//! Abstract syntax for window queries.

/// `SELECT <items> FROM <table> [WHERE ...] [WINDOW name AS (...), ...]
/// [ORDER BY ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowQueryStmt {
    pub items: Vec<SelectItem>,
    pub table: String,
    /// WHERE predicate over base-table columns, if any.
    pub where_clause: Option<WhereExpr>,
    /// Named window definitions (`WINDOW w AS (PARTITION BY ...)`).
    pub windows: Vec<(String, WindowDef)>,
    pub order_by: Vec<OrderItem>,
}

/// A WHERE predicate: column-vs-literal comparisons, `BETWEEN`, and `AND`
/// conjunctions (the shape `wf_exec::Predicate` executes).
#[derive(Debug, Clone, PartialEq)]
pub enum WhereExpr {
    Cmp {
        column: String,
        op: CmpOp,
        value: Arg,
    },
    Between {
        column: String,
        lo: Arg,
        hi: Arg,
    },
    And(Box<WhereExpr>, Box<WhereExpr>),
}

/// Comparison operator of a WHERE condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all base-table columns.
    Star,
    /// A plain column reference.
    Column(String),
    /// A window function.
    Window(WindowItem),
}

/// A window-function item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowItem {
    pub func: FuncCall,
    pub over: OverClause,
    /// Output alias (`AS name`); required so the appended column has a
    /// deterministic name.
    pub alias: String,
}

/// `OVER (...)` or `OVER name`.
#[derive(Debug, Clone, PartialEq)]
pub enum OverClause {
    Inline(WindowDef),
    Named(String),
}

/// The body of an OVER clause / WINDOW definition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowDef {
    pub partition_by: Vec<String>,
    pub order_by: Vec<OrderItem>,
    pub frame: Option<FrameAst>,
}

/// A function call: name plus literal/column arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncCall {
    pub name: String,
    pub args: Vec<Arg>,
}

/// A function argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    Column(String),
    Number(i64),
    Float(f64),
    Str(String),
    Star,
}

/// `<column> [ASC|DESC] [NULLS FIRST|LAST]`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub column: String,
    pub desc: bool,
    pub nulls_first: Option<bool>,
}

/// Window frame clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameAst {
    pub units: FrameUnitsAst,
    pub start: FrameBoundAst,
    pub end: FrameBoundAst,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameUnitsAst {
    Rows,
    Range,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameBoundAst {
    UnboundedPreceding,
    Preceding(i64),
    CurrentRow,
    Following(i64),
    UnboundedFollowing,
}
