//! Abstract syntax for window queries.

/// `SELECT <items> FROM <table> [WINDOW name AS (...), ...] [ORDER BY ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowQueryStmt {
    pub items: Vec<SelectItem>,
    pub table: String,
    /// Named window definitions (`WINDOW w AS (PARTITION BY ...)`).
    pub windows: Vec<(String, WindowDef)>,
    pub order_by: Vec<OrderItem>,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — all base-table columns.
    Star,
    /// A plain column reference.
    Column(String),
    /// A window function.
    Window(WindowItem),
}

/// A window-function item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowItem {
    pub func: FuncCall,
    pub over: OverClause,
    /// Output alias (`AS name`); required so the appended column has a
    /// deterministic name.
    pub alias: String,
}

/// `OVER (...)` or `OVER name`.
#[derive(Debug, Clone, PartialEq)]
pub enum OverClause {
    Inline(WindowDef),
    Named(String),
}

/// The body of an OVER clause / WINDOW definition.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowDef {
    pub partition_by: Vec<String>,
    pub order_by: Vec<OrderItem>,
    pub frame: Option<FrameAst>,
}

/// A function call: name plus literal/column arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncCall {
    pub name: String,
    pub args: Vec<Arg>,
}

/// A function argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    Column(String),
    Number(i64),
    Float(f64),
    Str(String),
    Star,
}

/// `<column> [ASC|DESC] [NULLS FIRST|LAST]`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub column: String,
    pub desc: bool,
    pub nulls_first: Option<bool>,
}

/// Window frame clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameAst {
    pub units: FrameUnitsAst,
    pub start: FrameBoundAst,
    pub end: FrameBoundAst,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameUnitsAst {
    Rows,
    Range,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrameBoundAst {
    UnboundedPreceding,
    Preceding(i64),
    CurrentRow,
    Following(i64),
    UnboundedFollowing,
}
