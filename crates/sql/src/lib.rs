//! # wf-sql
//!
//! A SQL front end for the window-query dialect the paper works with:
//!
//! ```sql
//! SELECT *, rank() OVER (PARTITION BY dept ORDER BY salary DESC NULLS LAST)
//!             AS rank_in_dept,
//!           rank() OVER (ORDER BY salary DESC NULLS LAST) AS globalrank
//! FROM emptab
//! ORDER BY dept, rank_in_dept
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] (AST in [`ast`]) → [`binder`] (resolves
//! names against a [`Catalog`] and produces a
//! [`wf_core::query::WindowQuery`]).

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use binder::{bind, Catalog};
pub use parser::parse;

use wf_common::Result;
use wf_core::query::WindowQuery;

/// Parse and bind a window query in one call; returns the source table name
/// and the bound query.
pub fn parse_window_query(sql: &str, catalog: &Catalog) -> Result<(String, WindowQuery)> {
    let stmt = parse(sql)?;
    let table = stmt.table.clone();
    let query = bind(&stmt, catalog)?;
    Ok((table, query))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{DataType, Schema};

    #[test]
    fn end_to_end_example1() {
        let mut catalog = Catalog::new();
        catalog.register(
            "emptab",
            Schema::of(&[
                ("empnum", DataType::Int),
                ("dept", DataType::Int),
                ("salary", DataType::Int),
            ]),
        );
        let (table, query) = parse_window_query(
            "SELECT *, rank() OVER (PARTITION BY dept ORDER BY salary desc nulls last) \
             as rank_in_dept, rank() OVER (ORDER BY salary desc nulls last) as globalrank \
             FROM emptab",
            &catalog,
        )
        .unwrap();
        assert_eq!(table, "emptab");
        assert_eq!(query.specs.len(), 2);
        assert_eq!(query.specs[0].name, "rank_in_dept");
        assert_eq!(query.specs[0].wpk().len(), 1);
        assert_eq!(query.specs[1].wpk().len(), 0);
    }
}
