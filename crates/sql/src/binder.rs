//! Name resolution: AST → [`WindowQuery`].

use crate::ast::*;
use std::collections::HashMap;
use wf_common::{Direction, Error, NullOrder, OrdElem, Result, Schema, SortSpec, Value};
use wf_core::query::WindowQuery;
use wf_core::spec::{Bound, FrameSpec, FrameUnits, WindowFunction, WindowSpec};

/// Table-name → schema registry.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Schema>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The single canonical form of a table name (ASCII-lowercased, like
    /// unquoted SQL identifiers). Everything that keys tables by name — this
    /// catalog, `wfopt`'s session table map, statistics maps — goes through
    /// this one function so a table registered as `WS` is found by `ws` and
    /// vice versa.
    pub fn canonical(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Register (or replace) a table.
    pub fn register(&mut self, name: &str, schema: Schema) {
        self.tables.insert(Self::canonical(name), schema);
    }

    /// Look up a table's schema.
    pub fn schema(&self, name: &str) -> Result<&Schema> {
        self.tables
            .get(&Self::canonical(name))
            .ok_or_else(|| Error::InvalidQuery(format!("unknown table `{name}`")))
    }
}

fn order_spec(items: &[OrderItem], schema: &Schema) -> Result<SortSpec> {
    let mut elems = Vec::with_capacity(items.len());
    for item in items {
        let attr = schema.resolve(&item.column)?;
        elems.push(OrdElem {
            attr,
            dir: if item.desc {
                Direction::Desc
            } else {
                Direction::Asc
            },
            nulls: match item.nulls_first {
                Some(true) => NullOrder::First,
                // SQL default: NULLS LAST for ASC, NULLS FIRST for DESC;
                // PostgreSQL treats NULLs as largest. We follow PostgreSQL:
                // DESC without an explicit clause puts NULLs first.
                Some(false) => NullOrder::Last,
                None => {
                    if item.desc {
                        NullOrder::First
                    } else {
                        NullOrder::Last
                    }
                }
            },
        });
    }
    Ok(SortSpec::new(elems))
}

fn arg_column(call: &FuncCall, idx: usize, schema: &Schema) -> Result<wf_common::AttrId> {
    match call.args.get(idx) {
        Some(Arg::Column(name)) => schema.resolve(name),
        other => Err(Error::InvalidQuery(format!(
            "{}: argument {} must be a column, found {:?}",
            call.name,
            idx + 1,
            other
        ))),
    }
}

fn arg_number(call: &FuncCall, idx: usize) -> Result<i64> {
    match call.args.get(idx) {
        Some(Arg::Number(n)) => Ok(*n),
        other => Err(Error::InvalidQuery(format!(
            "{}: argument {} must be an integer, found {:?}",
            call.name,
            idx + 1,
            other
        ))),
    }
}

fn expect_arity(call: &FuncCall, allowed: std::ops::RangeInclusive<usize>) -> Result<()> {
    if allowed.contains(&call.args.len()) {
        Ok(())
    } else {
        Err(Error::InvalidQuery(format!(
            "{} takes {:?} arguments, got {}",
            call.name,
            allowed,
            call.args.len()
        )))
    }
}

fn bind_function(call: &FuncCall, schema: &Schema) -> Result<WindowFunction> {
    let name = call.name.to_ascii_lowercase();
    match name.as_str() {
        "row_number" => {
            expect_arity(call, 0..=0)?;
            Ok(WindowFunction::RowNumber)
        }
        "rank" => {
            expect_arity(call, 0..=0)?;
            Ok(WindowFunction::Rank)
        }
        "dense_rank" => {
            expect_arity(call, 0..=0)?;
            Ok(WindowFunction::DenseRank)
        }
        "percent_rank" => {
            expect_arity(call, 0..=0)?;
            Ok(WindowFunction::PercentRank)
        }
        "cume_dist" => {
            expect_arity(call, 0..=0)?;
            Ok(WindowFunction::CumeDist)
        }
        "ntile" => {
            expect_arity(call, 1..=1)?;
            let n = arg_number(call, 0)?;
            if n <= 0 {
                return Err(Error::InvalidQuery(
                    "ntile requires a positive tile count".into(),
                ));
            }
            Ok(WindowFunction::Ntile(n as u64))
        }
        "lag" | "lead" => {
            expect_arity(call, 1..=3)?;
            let col = arg_column(call, 0, schema)?;
            let offset = if call.args.len() >= 2 {
                arg_number(call, 1)?.max(0) as u64
            } else {
                1
            };
            let default = match call.args.get(2) {
                None => None,
                Some(Arg::Number(n)) => Some(Value::Int(*n)),
                Some(Arg::Float(f)) => Some(Value::Float(*f)),
                Some(Arg::Str(s)) => Some(Value::str(s.clone())),
                Some(other) => {
                    return Err(Error::InvalidQuery(format!(
                        "{}: default must be a literal, found {other:?}",
                        call.name
                    )))
                }
            };
            Ok(if name == "lag" {
                WindowFunction::Lag {
                    col,
                    offset,
                    default,
                }
            } else {
                WindowFunction::Lead {
                    col,
                    offset,
                    default,
                }
            })
        }
        "first_value" => {
            expect_arity(call, 1..=1)?;
            Ok(WindowFunction::FirstValue(arg_column(call, 0, schema)?))
        }
        "last_value" => {
            expect_arity(call, 1..=1)?;
            Ok(WindowFunction::LastValue(arg_column(call, 0, schema)?))
        }
        "nth_value" => {
            expect_arity(call, 2..=2)?;
            let col = arg_column(call, 0, schema)?;
            let n = arg_number(call, 1)?;
            if n <= 0 {
                return Err(Error::InvalidQuery("nth_value requires n ≥ 1".into()));
            }
            Ok(WindowFunction::NthValue(col, n as u64))
        }
        "count" => {
            expect_arity(call, 0..=1)?;
            match call.args.first() {
                None | Some(Arg::Star) => Ok(WindowFunction::Count(None)),
                Some(Arg::Column(name)) => Ok(WindowFunction::Count(Some(schema.resolve(name)?))),
                Some(other) => Err(Error::InvalidQuery(format!(
                    "count: argument must be `*` or a column, found {other:?}"
                ))),
            }
        }
        "sum" => {
            expect_arity(call, 1..=1)?;
            Ok(WindowFunction::Sum(arg_column(call, 0, schema)?))
        }
        "avg" => {
            expect_arity(call, 1..=1)?;
            Ok(WindowFunction::Avg(arg_column(call, 0, schema)?))
        }
        "min" => {
            expect_arity(call, 1..=1)?;
            Ok(WindowFunction::Min(arg_column(call, 0, schema)?))
        }
        "max" => {
            expect_arity(call, 1..=1)?;
            Ok(WindowFunction::Max(arg_column(call, 0, schema)?))
        }
        "var_pop" => {
            expect_arity(call, 1..=1)?;
            Ok(WindowFunction::VarPop(arg_column(call, 0, schema)?))
        }
        "var_samp" | "variance" => {
            expect_arity(call, 1..=1)?;
            Ok(WindowFunction::VarSamp(arg_column(call, 0, schema)?))
        }
        "stddev_pop" => {
            expect_arity(call, 1..=1)?;
            Ok(WindowFunction::StddevPop(arg_column(call, 0, schema)?))
        }
        "stddev_samp" | "stddev" => {
            expect_arity(call, 1..=1)?;
            Ok(WindowFunction::StddevSamp(arg_column(call, 0, schema)?))
        }
        other => Err(Error::InvalidQuery(format!(
            "unknown window function `{other}`"
        ))),
    }
}

fn literal_value(arg: &Arg) -> Result<Value> {
    match arg {
        Arg::Number(n) => Ok(Value::Int(*n)),
        Arg::Float(f) => Ok(Value::Float(*f)),
        Arg::Str(s) => Ok(Value::str(s.clone())),
        other => Err(Error::InvalidQuery(format!(
            "WHERE operand must be a literal, found {other:?}"
        ))),
    }
}

/// Resolve a WHERE expression to the executable [`wf_core::Predicate`].
fn bind_where(expr: &WhereExpr, schema: &Schema) -> Result<wf_core::Predicate> {
    use wf_core::Predicate as P;
    match expr {
        WhereExpr::Cmp { column, op, value } => {
            let attr = schema.resolve(column)?;
            let v = literal_value(value)?;
            Ok(match op {
                CmpOp::Eq => P::Eq(attr, v),
                CmpOp::Ne => P::Ne(attr, v),
                CmpOp::Lt => P::Lt(attr, v),
                CmpOp::Le => P::Le(attr, v),
                CmpOp::Gt => P::Gt(attr, v),
                CmpOp::Ge => P::Ge(attr, v),
            })
        }
        WhereExpr::Between { column, lo, hi } => Ok(P::Between(
            schema.resolve(column)?,
            literal_value(lo)?,
            literal_value(hi)?,
        )),
        WhereExpr::And(l, r) => Ok(P::And(
            Box::new(bind_where(l, schema)?),
            Box::new(bind_where(r, schema)?),
        )),
    }
}

fn bind_frame(ast: &FrameAst) -> FrameSpec {
    let bound = |b: FrameBoundAst| match b {
        FrameBoundAst::UnboundedPreceding => Bound::UnboundedPreceding,
        FrameBoundAst::Preceding(n) => Bound::Preceding(n),
        FrameBoundAst::CurrentRow => Bound::CurrentRow,
        FrameBoundAst::Following(n) => Bound::Following(n),
        FrameBoundAst::UnboundedFollowing => Bound::UnboundedFollowing,
    };
    FrameSpec {
        units: match ast.units {
            FrameUnitsAst::Rows => FrameUnits::Rows,
            FrameUnitsAst::Range => FrameUnits::Range,
        },
        start: bound(ast.start),
        end: bound(ast.end),
    }
}

/// Bind a parsed statement against the catalog.
pub fn bind(stmt: &WindowQueryStmt, catalog: &Catalog) -> Result<WindowQuery> {
    let schema = catalog.schema(&stmt.table)?;

    // Named WINDOW definitions (case-insensitive lookup, duplicates
    // rejected).
    let mut named: HashMap<String, &WindowDef> = HashMap::new();
    for (name, def) in &stmt.windows {
        if named.insert(name.to_ascii_lowercase(), def).is_some() {
            return Err(Error::InvalidQuery(format!(
                "duplicate WINDOW name `{name}`"
            )));
        }
    }

    let mut specs = Vec::new();
    // Projection plan: remember what each select item contributes. Window
    // output columns live after the base columns in the output schema.
    enum Proj {
        Star,
        Base(wf_common::AttrId),
        Window(usize), // index into specs
    }
    let mut proj_items: Vec<Proj> = Vec::new();
    let mut saw_star = false;

    for item in &stmt.items {
        match item {
            SelectItem::Star => {
                saw_star = true;
                proj_items.push(Proj::Star);
            }
            SelectItem::Column(name) => {
                proj_items.push(Proj::Base(schema.resolve(name)?));
            }
            SelectItem::Window(w) => {
                let def = match &w.over {
                    OverClause::Inline(def) => def,
                    OverClause::Named(name) => named
                        .get(&name.to_ascii_lowercase())
                        .copied()
                        .ok_or_else(|| Error::InvalidQuery(format!("unknown window `{name}`")))?,
                };
                let func = bind_function(&w.func, schema)?;
                let mut wpk = Vec::with_capacity(def.partition_by.len());
                for name in &def.partition_by {
                    wpk.push(schema.resolve(name)?);
                }
                let wok = order_spec(&def.order_by, schema)?;
                let mut spec = WindowSpec::new(w.alias.clone(), func, wpk, wok);
                if let Some(frame) = &def.frame {
                    spec = spec.with_frame(bind_frame(frame));
                }
                proj_items.push(Proj::Window(specs.len()));
                specs.push(spec);
            }
        }
    }

    let mut query = WindowQuery::new(schema.clone(), specs);
    if let Some(wc) = &stmt.where_clause {
        // WHERE binds against the base table only (window aliases are not
        // in scope under SQL semantics — windows evaluate after WHERE).
        query.filter = Some(bind_where(wc, schema)?);
    }
    if !stmt.order_by.is_empty() {
        // The final ORDER BY may reference window output columns; bind
        // against the output schema.
        let out_schema = query.output_schema()?;
        query.order_by = Some(order_spec(&stmt.order_by, &out_schema)?);
    }

    // `SELECT *, wf...` (star plus all windows in order) needs no
    // projection; anything else projects the output schema.
    let base_len = schema.len();
    let is_plain_star = saw_star
        && proj_items.len() == query.specs.len() + 1
        && matches!(proj_items[0], Proj::Star);
    if !is_plain_star {
        let mut cols: Vec<wf_common::AttrId> = Vec::new();
        for p in &proj_items {
            match p {
                Proj::Star => cols.extend((0..base_len).map(wf_common::AttrId::new)),
                Proj::Base(a) => cols.push(*a),
                Proj::Window(i) => cols.push(wf_common::AttrId::new(base_len + i)),
            }
        }
        query.projection = Some(cols);
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use wf_common::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "t",
            Schema::of(&[
                ("g", DataType::Int),
                ("v", DataType::Int),
                ("s", DataType::Str),
            ]),
        );
        c
    }

    fn bind_sql(sql: &str) -> Result<WindowQuery> {
        bind(&parse(sql).unwrap(), &catalog())
    }

    #[test]
    fn binds_all_function_kinds() {
        let q = bind_sql(
            "SELECT *, row_number() OVER (PARTITION BY g ORDER BY v) AS rn, \
             dense_rank() OVER (ORDER BY v) AS dr, \
             percent_rank() OVER (ORDER BY v) AS pr, \
             cume_dist() OVER (ORDER BY v) AS cd, \
             ntile(4) OVER (ORDER BY v) AS nt, \
             lag(v, 1, -1) OVER (ORDER BY v) AS lg, \
             lead(v) OVER (ORDER BY v) AS ld, \
             first_value(v) OVER (ORDER BY v) AS fv, \
             last_value(v) OVER (ORDER BY v) AS lv, \
             nth_value(v, 2) OVER (ORDER BY v) AS nv, \
             count(*) OVER (PARTITION BY g) AS c1, \
             count(v) OVER (PARTITION BY g) AS c2, \
             sum(v) OVER (PARTITION BY g ORDER BY v) AS sm, \
             avg(v) OVER (PARTITION BY g) AS av, \
             min(v) OVER (PARTITION BY g) AS mn, \
             max(v) OVER (PARTITION BY g) AS mx \
             FROM t",
        )
        .unwrap();
        assert_eq!(q.specs.len(), 16);
        assert!(matches!(
            q.specs[5].func,
            WindowFunction::Lag { offset: 1, .. }
        ));
        assert!(matches!(q.specs[10].func, WindowFunction::Count(None)));
        assert!(matches!(q.specs[11].func, WindowFunction::Count(Some(_))));
    }

    #[test]
    fn binds_frames() {
        let q = bind_sql(
            "SELECT *, sum(v) OVER (ORDER BY v ROWS BETWEEN 2 PRECEDING AND 1 FOLLOWING) \
             AS s FROM t",
        )
        .unwrap();
        let f = q.specs[0].frame.unwrap();
        assert_eq!(f.units, FrameUnits::Rows);
        assert_eq!(f.start, Bound::Preceding(2));
        assert_eq!(f.end, Bound::Following(1));
    }

    #[test]
    fn desc_defaults_nulls_first_postgres_style() {
        let q = bind_sql("SELECT *, rank() OVER (ORDER BY v DESC) AS r FROM t").unwrap();
        assert_eq!(q.specs[0].wok().elems()[0].nulls, NullOrder::First);
        let q2 =
            bind_sql("SELECT *, rank() OVER (ORDER BY v DESC NULLS LAST) AS r FROM t").unwrap();
        assert_eq!(q2.specs[0].wok().elems()[0].nulls, NullOrder::Last);
    }

    #[test]
    fn final_order_by_may_use_window_aliases() {
        let q = bind_sql(
            "SELECT *, rank() OVER (PARTITION BY g ORDER BY v) AS r FROM t ORDER BY g, r DESC",
        )
        .unwrap();
        let ob = q.order_by.unwrap();
        assert_eq!(ob.len(), 2);
        assert_eq!(
            ob.elems()[1].attr.index(),
            3,
            "alias binds to appended column"
        );
    }

    #[test]
    fn binder_errors() {
        assert!(bind_sql("SELECT *, rank() OVER () AS r FROM unknown_table").is_err());
        assert!(bind_sql("SELECT *, rank(1) OVER () AS r FROM t").is_err());
        assert!(bind_sql("SELECT *, nosuch() OVER () AS r FROM t").is_err());
        assert!(bind_sql("SELECT *, ntile(0) OVER () AS r FROM t").is_err());
        assert!(bind_sql("SELECT *, sum(zz) OVER () AS r FROM t").is_err());
        assert!(bind_sql("SELECT *, rank() OVER (PARTITION BY zz) AS r FROM t").is_err());
        assert!(bind_sql("SELECT *, rank() OVER () AS r FROM t ORDER BY zz").is_err());
    }

    #[test]
    fn where_clause_binds_to_predicate() {
        let q = bind_sql(
            "SELECT *, rank() OVER (ORDER BY v) AS r FROM t \
             WHERE g >= 1 AND v BETWEEN 2 AND 9 AND s = 'x'",
        )
        .unwrap();
        let p = q.filter.expect("filter bound");
        // Smoke the executable shape: a row matching all conditions.
        let hit = wf_common::Row::new(vec![Value::Int(1), Value::Int(5), Value::str("x")]);
        let miss = wf_common::Row::new(vec![Value::Int(0), Value::Int(5), Value::str("x")]);
        assert!(p.matches(&hit));
        assert!(!p.matches(&miss));
    }

    #[test]
    fn where_unknown_column_errors() {
        assert!(bind_sql("SELECT *, rank() OVER () AS r FROM t WHERE zz = 1").is_err());
    }

    #[test]
    fn named_windows_bind_and_share_definition() {
        let q = bind_sql(
            "SELECT *, rank() OVER w AS r, sum(v) OVER w AS s FROM t \
             WINDOW w AS (PARTITION BY g ORDER BY v)",
        )
        .unwrap();
        assert_eq!(q.specs.len(), 2);
        assert_eq!(q.specs[0].wpk(), q.specs[1].wpk());
        assert_eq!(q.specs[0].wok(), q.specs[1].wok());
        assert!(
            q.projection.is_none(),
            "star + all windows needs no projection"
        );
    }

    #[test]
    fn unknown_or_duplicate_window_name_errors() {
        assert!(bind_sql("SELECT *, rank() OVER nope AS r FROM t").is_err());
        assert!(bind_sql(
            "SELECT *, rank() OVER w AS r FROM t WINDOW w AS (ORDER BY v), w AS (ORDER BY g)"
        )
        .is_err());
    }

    #[test]
    fn projection_built_for_column_lists() {
        let q = bind_sql("SELECT g, rank() OVER (ORDER BY v) AS r, v FROM t").unwrap();
        let proj = q.projection.expect("projection required");
        // Output schema: g,v,s,r → projection g(0), r(3), v(1).
        let idx: Vec<usize> = proj.iter().map(|a| a.index()).collect();
        assert_eq!(idx, vec![0, 3, 1]);
    }

    #[test]
    fn stddev_variance_bind() {
        let q = bind_sql(
            "SELECT *, stddev(v) OVER (PARTITION BY g) AS sd, \
             var_pop(v) OVER (PARTITION BY g) AS vp FROM t",
        )
        .unwrap();
        assert!(matches!(q.specs[0].func, WindowFunction::StddevSamp(_)));
        assert!(matches!(q.specs[1].func, WindowFunction::VarPop(_)));
    }

    #[test]
    fn catalog_lookup_case_insensitive() {
        let c = catalog();
        assert!(c.schema("T").is_ok());
        assert!(c.schema("nope").is_err());
    }
}
