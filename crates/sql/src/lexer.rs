//! Tokenizer for the window-query dialect.

use wf_common::{Error, Result};

/// A token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds. Keywords are lexed as `Ident` and matched
/// case-insensitively by the parser, except for punctuation.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Number(i64),
    Float(f64),
    Str(String),
    Comma,
    LParen,
    RParen,
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    Eof,
}

/// Tokenize `input`.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            '*' => {
                tokens.push(Token {
                    kind: TokenKind::Star,
                    offset: i,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    kind: TokenKind::Eq,
                    offset: i,
                });
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token {
                    kind: TokenKind::Ne,
                    offset: i,
                });
                i += 2;
            }
            '<' => {
                let (kind, width) = match bytes.get(i + 1) {
                    Some(b'=') => (TokenKind::Le, 2),
                    Some(b'>') => (TokenKind::Ne, 2),
                    _ => (TokenKind::Lt, 1),
                };
                tokens.push(Token { kind, offset: i });
                i += width;
            }
            '>' => {
                let (kind, width) = match bytes.get(i + 1) {
                    Some(b'=') => (TokenKind::Ge, 2),
                    _ => (TokenKind::Gt, 1),
                };
                tokens.push(Token { kind, offset: i });
                i += width;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(Error::Parse {
                            offset: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    if bytes[i] == b'\'' {
                        // Doubled quote = escaped quote.
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() || (c == '-' && peek_digit(bytes, i + 1)) => {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len() && bytes[i] == b'.' && peek_digit(bytes, i + 1) {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| Error::Parse {
                        offset: start,
                        message: format!("invalid float `{text}`"),
                    })?)
                } else {
                    TokenKind::Number(text.parse().map_err(|_| Error::Parse {
                        offset: start,
                        message: format!("invalid integer `{text}`"),
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[start..i].to_string()),
                    offset: start,
                });
            }
            other => {
                return Err(Error::Parse {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

fn peek_digit(bytes: &[u8], i: usize) -> bool {
    i < bytes.len() && (bytes[i] as char).is_ascii_digit()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT *, rank() FROM t"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Star,
                TokenKind::Comma,
                TokenKind::Ident("rank".into()),
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(
            kinds("3 -7 2.5"),
            vec![
                TokenKind::Number(3),
                TokenKind::Number(-7),
                TokenKind::Float(2.5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("= <> != < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("ab cd").unwrap();
        assert_eq!(toks[1].offset, 3);
    }

    #[test]
    fn unknown_char_errors() {
        assert!(matches!(
            tokenize("a ; b"),
            Err(Error::Parse { offset: 2, .. })
        ));
    }
}
