//! Recursive-descent parser for the window-query dialect.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query     := SELECT item (',' item)* FROM ident [WHERE conj]
//!              [WINDOW ident AS '(' windef ')' (',' ident AS '(' windef ')')*]
//!              [ORDER BY orderlist]
//! item      := '*' | call OVER over AS ident | ident
//! over      := '(' windef ')' | ident
//! windef    := [PARTITION BY collist] [ORDER BY orderlist] [frame]
//! call      := ident '(' [args] ')'
//! args      := arg (',' arg)*      arg := ident | number | string | '*'
//! conj      := cond (AND cond)*
//! cond      := ident cmpop literal | ident BETWEEN literal AND literal
//! cmpop     := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//! orderlist := order (',' order)*
//! order     := ident [ASC|DESC] [NULLS (FIRST|LAST)]
//! frame     := (ROWS|RANGE) (BETWEEN bound AND bound | bound)
//! bound     := UNBOUNDED PRECEDING | n PRECEDING | CURRENT ROW
//!            | n FOLLOWING | UNBOUNDED FOLLOWING
//! ```

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use wf_common::{Error, Result};

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// Parse one window query.
pub fn parse(sql: &str) -> Result<WindowQueryStmt> {
    let mut p = Parser {
        tokens: tokenize(sql)?,
        pos: 0,
    };
    let stmt = p.query()?;
    p.expect_eof()?;
    Ok(stmt)
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(Error::Parse {
            offset: self.peek().offset,
            message: message.into(),
        })
    }

    /// Consume a keyword (case-insensitive) or fail.
    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`"))
        }
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = &self.peek().kind {
            if s.eq_ignore_ascii_case(kw) {
                self.advance();
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn expect_token(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if &self.peek().kind == kind {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            self.err("unexpected trailing input")
        }
    }

    fn query(&mut self) -> Result<WindowQueryStmt> {
        self.expect_kw("SELECT")?;
        let mut items = vec![self.select_item()?];
        while self.peek().kind == TokenKind::Comma {
            self.advance();
            items.push(self.select_item()?);
        }
        self.expect_kw("FROM")?;
        let table = self.expect_ident()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.where_conjunction()?)
        } else {
            None
        };
        let mut windows = Vec::new();
        if self.eat_kw("WINDOW") {
            loop {
                let name = self.expect_ident()?;
                self.expect_kw("AS")?;
                self.expect_token(&TokenKind::LParen, "`(` after WINDOW name AS")?;
                let def = self.window_def()?;
                self.expect_token(&TokenKind::RParen, "`)` closing WINDOW definition")?;
                windows.push((name, def));
                if self.peek().kind != TokenKind::Comma {
                    break;
                }
                self.advance();
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            order_by = self.order_list()?;
        }
        if !items.iter().any(|i| matches!(i, SelectItem::Window(_))) {
            return self.err("expected at least one window function in the select list");
        }
        Ok(WindowQueryStmt {
            items,
            table,
            where_clause,
            windows,
            order_by,
        })
    }

    fn where_conjunction(&mut self) -> Result<WhereExpr> {
        let mut expr = self.where_condition()?;
        while self.eat_kw("AND") {
            let rhs = self.where_condition()?;
            expr = WhereExpr::And(Box::new(expr), Box::new(rhs));
        }
        Ok(expr)
    }

    fn where_condition(&mut self) -> Result<WhereExpr> {
        let column = self.expect_ident()?;
        if self.eat_kw("BETWEEN") {
            let lo = self.literal()?;
            self.expect_kw("AND")?;
            let hi = self.literal()?;
            return Ok(WhereExpr::Between { column, lo, hi });
        }
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return self.err("expected comparison operator"),
        };
        self.advance();
        let value = self.literal()?;
        Ok(WhereExpr::Cmp { column, op, value })
    }

    /// A literal WHERE operand (no columns on the right-hand side).
    fn literal(&mut self) -> Result<Arg> {
        match self.peek().kind.clone() {
            TokenKind::Number(n) => {
                self.advance();
                Ok(Arg::Number(n))
            }
            TokenKind::Float(f) => {
                self.advance();
                Ok(Arg::Float(f))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Arg::Str(s))
            }
            _ => self.err("expected literal"),
        }
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.peek().kind == TokenKind::Star {
            self.advance();
            return Ok(SelectItem::Star);
        }
        // Disambiguate `col` vs `func(...) OVER`: look ahead one token.
        if let TokenKind::Ident(_) = &self.peek().kind {
            let is_call = matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::LParen)
            );
            if !is_call {
                let name = self.expect_ident()?;
                return Ok(SelectItem::Column(name));
            }
        }
        Ok(SelectItem::Window(self.window_item()?))
    }

    fn window_item(&mut self) -> Result<WindowItem> {
        let func = self.func_call()?;
        self.expect_kw("OVER")?;
        let over = if self.peek().kind == TokenKind::LParen {
            self.advance();
            let def = self.window_def()?;
            self.expect_token(&TokenKind::RParen, "`)` closing OVER")?;
            OverClause::Inline(def)
        } else {
            OverClause::Named(self.expect_ident()?)
        };
        self.expect_kw("AS")?;
        let alias = self.expect_ident()?;
        Ok(WindowItem { func, over, alias })
    }

    fn window_def(&mut self) -> Result<WindowDef> {
        let mut partition_by = Vec::new();
        if self.eat_kw("PARTITION") {
            self.expect_kw("BY")?;
            partition_by.push(self.expect_ident()?);
            while self.peek().kind == TokenKind::Comma {
                self.advance();
                partition_by.push(self.expect_ident()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            order_by = self.order_list()?;
        }
        let frame = if self.peek_kw("ROWS") || self.peek_kw("RANGE") {
            Some(self.frame()?)
        } else {
            None
        };
        Ok(WindowDef {
            partition_by,
            order_by,
            frame,
        })
    }

    fn func_call(&mut self) -> Result<FuncCall> {
        let name = self.expect_ident()?;
        self.expect_token(&TokenKind::LParen, "`(` after function name")?;
        let mut args = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            args.push(self.arg()?);
            while self.peek().kind == TokenKind::Comma {
                self.advance();
                args.push(self.arg()?);
            }
        }
        self.expect_token(&TokenKind::RParen, "`)` closing call")?;
        Ok(FuncCall { name, args })
    }

    fn arg(&mut self) -> Result<Arg> {
        let t = self.advance();
        match t.kind {
            TokenKind::Ident(s) => Ok(Arg::Column(s)),
            TokenKind::Number(n) => Ok(Arg::Number(n)),
            TokenKind::Float(f) => Ok(Arg::Float(f)),
            TokenKind::Str(s) => Ok(Arg::Str(s)),
            TokenKind::Star => Ok(Arg::Star),
            other => Err(Error::Parse {
                offset: t.offset,
                message: format!("expected argument, found {other:?}"),
            }),
        }
    }

    fn order_list(&mut self) -> Result<Vec<OrderItem>> {
        let mut out = vec![self.order_item()?];
        while self.peek().kind == TokenKind::Comma {
            self.advance();
            out.push(self.order_item()?);
        }
        Ok(out)
    }

    fn order_item(&mut self) -> Result<OrderItem> {
        let column = self.expect_ident()?;
        let desc = if self.eat_kw("DESC") {
            true
        } else {
            self.eat_kw("ASC");
            false
        };
        let nulls_first = if self.eat_kw("NULLS") {
            if self.eat_kw("FIRST") {
                Some(true)
            } else {
                self.expect_kw("LAST")?;
                Some(false)
            }
        } else {
            None
        };
        Ok(OrderItem {
            column,
            desc,
            nulls_first,
        })
    }

    fn frame(&mut self) -> Result<FrameAst> {
        let units = if self.eat_kw("ROWS") {
            FrameUnitsAst::Rows
        } else {
            self.expect_kw("RANGE")?;
            FrameUnitsAst::Range
        };
        if self.eat_kw("BETWEEN") {
            let start = self.bound()?;
            self.expect_kw("AND")?;
            let end = self.bound()?;
            Ok(FrameAst { units, start, end })
        } else {
            // Single-bound form: bound .. CURRENT ROW.
            let start = self.bound()?;
            Ok(FrameAst {
                units,
                start,
                end: FrameBoundAst::CurrentRow,
            })
        }
    }

    fn bound(&mut self) -> Result<FrameBoundAst> {
        if self.eat_kw("UNBOUNDED") {
            if self.eat_kw("PRECEDING") {
                return Ok(FrameBoundAst::UnboundedPreceding);
            }
            self.expect_kw("FOLLOWING")?;
            return Ok(FrameBoundAst::UnboundedFollowing);
        }
        if self.eat_kw("CURRENT") {
            self.expect_kw("ROW")?;
            return Ok(FrameBoundAst::CurrentRow);
        }
        if let TokenKind::Number(n) = self.peek().kind {
            self.advance();
            if self.eat_kw("PRECEDING") {
                return Ok(FrameBoundAst::Preceding(n));
            }
            self.expect_kw("FOLLOWING")?;
            return Ok(FrameBoundAst::Following(n));
        }
        self.err("expected frame bound")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example1() {
        let stmt = parse(
            "SELECT *, rank() OVER (PARTITION BY dept ORDER BY salary desc nulls last) \
             as rank_in_dept, rank() OVER (ORDER BY salary desc nulls last) as globalrank \
             FROM emptab",
        )
        .unwrap();
        assert_eq!(stmt.table, "emptab");
        assert_eq!(stmt.items.len(), 3); // `*` plus two window items
        let SelectItem::Window(w1) = &stmt.items[1] else {
            panic!("expected window item")
        };
        assert_eq!(w1.alias, "rank_in_dept");
        let OverClause::Inline(def) = &w1.over else {
            panic!("expected inline OVER")
        };
        assert_eq!(def.partition_by, vec!["dept"]);
        assert_eq!(def.order_by[0].column, "salary");
        assert!(def.order_by[0].desc);
        assert_eq!(def.order_by[0].nulls_first, Some(false));
        let SelectItem::Window(w2) = &stmt.items[2] else {
            panic!("expected window item")
        };
        let OverClause::Inline(def2) = &w2.over else {
            panic!("expected inline OVER")
        };
        assert!(def2.partition_by.is_empty());
    }

    #[test]
    fn parses_frames() {
        let stmt = parse(
            "SELECT *, sum(x) OVER (ORDER BY d ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) \
             AS s, avg(x) OVER (ORDER BY d RANGE UNBOUNDED PRECEDING) AS a FROM t",
        )
        .unwrap();
        let get_def = |i: usize| -> &WindowDef {
            match &stmt.items[i] {
                SelectItem::Window(w) => match &w.over {
                    OverClause::Inline(d) => d,
                    _ => panic!("expected inline"),
                },
                _ => panic!("expected window item"),
            }
        };
        let f1 = get_def(1).frame.unwrap();
        assert_eq!(f1.units, FrameUnitsAst::Rows);
        assert_eq!(f1.start, FrameBoundAst::Preceding(1));
        assert_eq!(f1.end, FrameBoundAst::CurrentRow);
        let f2 = get_def(2).frame.unwrap();
        assert_eq!(f2.units, FrameUnitsAst::Range);
        assert_eq!(f2.start, FrameBoundAst::UnboundedPreceding);
        assert_eq!(f2.end, FrameBoundAst::CurrentRow);
    }

    #[test]
    fn parses_args_and_final_order_by() {
        let stmt = parse(
            "SELECT *, ntile(4) OVER (ORDER BY v) AS t4, \
             lag(v, 2, 0) OVER (ORDER BY v) AS l, \
             count(*) OVER (PARTITION BY g) AS c \
             FROM t ORDER BY g DESC, t4",
        )
        .unwrap();
        let get_w = |i: usize| match &stmt.items[i] {
            SelectItem::Window(w) => w,
            _ => panic!("expected window item"),
        };
        assert_eq!(get_w(1).func.args, vec![Arg::Number(4)]);
        assert_eq!(
            get_w(2).func.args,
            vec![Arg::Column("v".into()), Arg::Number(2), Arg::Number(0)]
        );
        assert_eq!(get_w(3).func.args, vec![Arg::Star]);
        assert_eq!(stmt.order_by.len(), 2);
        assert!(stmt.order_by[0].desc);
    }

    #[test]
    fn error_positions() {
        assert!(parse("SELECT *, rank() OVER (PARTITION BY) AS r FROM t").is_err());
        assert!(parse("SELECT *, rank() OVER () AS r").is_err()); // no FROM
        assert!(parse("SELECT *, rank() OVER () FROM t").is_err()); // no alias
        assert!(parse("SELECT * FROM t").is_err()); // no window item
        assert!(parse("SELECT *, rank() OVER () AS r FROM t garbage").is_err());
    }

    #[test]
    fn parses_where_clause() {
        let stmt = parse(
            "SELECT *, rank() OVER (ORDER BY v) AS r FROM t \
             WHERE g = 1 AND v BETWEEN 2 AND 9 AND s <> 'x' ORDER BY r",
        )
        .unwrap();
        let wc = stmt.where_clause.unwrap();
        // ((g = 1 AND v BETWEEN 2 AND 9) AND s <> 'x') — left-assoc AND.
        let WhereExpr::And(left, right) = wc else {
            panic!("expected AND");
        };
        assert_eq!(
            *right,
            WhereExpr::Cmp {
                column: "s".into(),
                op: CmpOp::Ne,
                value: Arg::Str("x".into())
            }
        );
        let WhereExpr::And(gl, between) = *left else {
            panic!("expected nested AND");
        };
        assert_eq!(
            *gl,
            WhereExpr::Cmp {
                column: "g".into(),
                op: CmpOp::Eq,
                value: Arg::Number(1)
            }
        );
        assert!(matches!(*between, WhereExpr::Between { .. }));
        assert_eq!(stmt.order_by.len(), 1);
    }

    #[test]
    fn where_errors() {
        // Missing operator / operand / column on rhs.
        assert!(parse("SELECT *, rank() OVER () AS r FROM t WHERE g").is_err());
        assert!(parse("SELECT *, rank() OVER () AS r FROM t WHERE g =").is_err());
        assert!(parse("SELECT *, rank() OVER () AS r FROM t WHERE g = h").is_err());
        assert!(parse("SELECT *, rank() OVER () AS r FROM t WHERE BETWEEN 1 AND 2").is_err());
    }

    #[test]
    fn plain_columns_and_star_mix() {
        let stmt = parse("SELECT a, b, rank() OVER (ORDER BY a) AS r FROM t").unwrap();
        assert_eq!(stmt.items.len(), 3);
        assert_eq!(stmt.items[0], SelectItem::Column("a".into()));
        assert_eq!(stmt.items[1], SelectItem::Column("b".into()));
        assert!(matches!(stmt.items[2], SelectItem::Window(_)));
    }

    #[test]
    fn named_window_clause() {
        let stmt = parse(
            "SELECT *, rank() OVER w AS r, sum(v) OVER w AS s \
             FROM t WINDOW w AS (PARTITION BY g ORDER BY v)",
        )
        .unwrap();
        assert_eq!(stmt.windows.len(), 1);
        assert_eq!(stmt.windows[0].0, "w");
        assert_eq!(stmt.windows[0].1.partition_by, vec!["g"]);
        let SelectItem::Window(w) = &stmt.items[1] else {
            panic!()
        };
        assert_eq!(w.over, OverClause::Named("w".into()));
    }

    #[test]
    fn multiple_named_windows() {
        let stmt = parse(
            "SELECT *, rank() OVER w1 AS a, rank() OVER w2 AS b FROM t \
             WINDOW w1 AS (PARTITION BY x), w2 AS (ORDER BY y DESC) ORDER BY a",
        )
        .unwrap();
        assert_eq!(stmt.windows.len(), 2);
        assert!(stmt.windows[1].1.order_by[0].desc);
        assert_eq!(stmt.order_by.len(), 1);
    }

    #[test]
    fn keywords_case_insensitive() {
        assert!(
            parse("select *, RANK() over (partition by a ORDER by b) As r from T Order BY a")
                .is_ok()
        );
    }
}
