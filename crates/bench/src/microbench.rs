//! A tiny fixed-iteration benchmark runner used by the `cargo bench`
//! targets (`harness = false`).
//!
//! The original targets used Criterion; the workspace builds without
//! external dependencies, so this runner keeps the same shape — named
//! groups, named cases, warm-up plus timed iterations — and reports
//! best/mean wall time per case. Set `WF_BENCH_ITERS` to change the
//! iteration count (default 5; CI smoke runs can use 1).

use std::time::Instant;

/// Number of timed iterations per case.
pub fn iterations() -> usize {
    std::env::var("WF_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5)
}

/// A named group of benchmark cases printing aligned results.
pub struct BenchGroup {
    name: String,
    iters: usize,
    results: Vec<(String, f64, f64)>, // (case, best ms, mean ms)
}

impl BenchGroup {
    /// Start a group with the iteration count from `WF_BENCH_ITERS`.
    pub fn new(name: &str) -> Self {
        Self::with_iterations(name, iterations())
    }

    /// Start a group with an explicit iteration count (the env var is read
    /// once, at construction).
    pub fn with_iterations(name: &str, iters: usize) -> Self {
        eprintln!("group {name} ({iters} iterations per case)");
        BenchGroup {
            name: name.to_string(),
            iters: iters.max(1),
            results: Vec::new(),
        }
    }

    /// Run one case: warm up once, then time the configured iterations.
    pub fn bench<F: FnMut()>(&mut self, id: &str, mut f: F) {
        f(); // warm-up
        let mut total = 0.0f64;
        let mut best = f64::INFINITY;
        for _ in 0..self.iters {
            let t0 = Instant::now();
            f();
            let ms = t0.elapsed().as_secs_f64() * 1000.0;
            total += ms;
            best = best.min(ms);
        }
        self.results
            .push((id.to_string(), best, total / self.iters as f64));
    }

    /// Print the group's results table.
    pub fn finish(self) {
        let width = self
            .results
            .iter()
            .map(|(id, ..)| id.len())
            .max()
            .unwrap_or(4)
            .max(4);
        println!("\n== {} ==", self.name);
        println!("{:width$}  {:>10}  {:>10}", "case", "best ms", "mean ms");
        for (id, best, mean) in &self.results {
            println!("{id:width$}  {best:>10.2}  {mean:>10.2}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_records() {
        let mut g = BenchGroup::with_iterations("t", 2);
        let mut count = 0u32;
        g.bench("case", || count += 1);
        assert_eq!(count, 3, "one warm-up plus two timed iterations");
        assert_eq!(g.results.len(), 1);
        g.finish();
    }
}
