//! The paper's benchmark queries, expressed against the `web_sales`
//! generator schema.
//!
//! * Table 1: Q1–Q5 (micro-benchmark, single `rank()` each),
//! * Tables 3/5/7/9: the window-function sets of Q6–Q9. Attribute
//!   abbreviations per Table 2: `date = ws_sold_date_sk`,
//!   `time = ws_sold_time_sk`, `ship = ws_ship_date_sk`,
//!   `item = ws_item_sk`, `bill = ws_bill_customer_sk`.

use wf_common::{OrdElem, SortSpec};
use wf_core::query::WindowQuery;
use wf_core::spec::WindowSpec;
use wf_datagen::{WsColumn, WsConfig};

fn spec(name: &str, wpk: &[WsColumn], wok: &[WsColumn]) -> WindowSpec {
    WindowSpec::rank(
        name,
        wpk.iter().map(|c| c.attr()).collect(),
        SortSpec::new(wok.iter().map(|c| OrdElem::asc(c.attr())).collect()),
    )
}

use WsColumn::{
    Bill, Item, Quantity, ShipDate as Ship, SoldDate as Date, SoldTime as Time, Warehouse,
};

/// Q1 (Table 1): WPK = {item}, WOK = (time) — "medium" partition count.
pub fn q1() -> WindowSpec {
    spec("rank_q1", &[Item], &[Time])
}

/// Q2 (Table 1): WPK = {item, bill} — "extremely large" partition count.
pub fn q2() -> WindowSpec {
    spec("rank_q2", &[Item, Bill], &[Time])
}

/// Q3 (Table 1): WPK = {warehouse} — 16 partitions.
pub fn q3() -> WindowSpec {
    spec("rank_q3", &[Warehouse], &[Time])
}

/// Q4/Q5 (Table 1): WPK = {quantity}, WOK = (item), over `web_sales_s` /
/// `web_sales_g`.
pub fn q4_q5() -> WindowSpec {
    spec("rank_q45", &[Quantity], &[Item])
}

/// Q6 (Table 3).
pub fn q6(cfg: &WsConfig) -> WindowQuery {
    WindowQuery::new(
        cfg.schema(),
        vec![spec("wf1", &[Item], &[Date]), spec("wf2", &[Item], &[Bill])],
    )
}

/// Q7 (Table 5) — the Oracle running example.
pub fn q7(cfg: &WsConfig) -> WindowQuery {
    WindowQuery::new(
        cfg.schema(),
        vec![
            spec("wf1", &[Date, Time, Ship], &[]),
            spec("wf2", &[Time, Date], &[]),
            spec("wf3", &[Item], &[]),
            spec("wf4", &[], &[Item, Bill]),
            spec("wf5", &[Date, Time, Item, Bill], &[Ship]),
        ],
    )
}

/// Q8 (Table 7) — Q7 with item moved into wf4's WPK and bill into wf5's
/// WOK.
pub fn q8(cfg: &WsConfig) -> WindowQuery {
    WindowQuery::new(
        cfg.schema(),
        vec![
            spec("wf1", &[Date, Time, Ship], &[]),
            spec("wf2", &[Time, Date], &[]),
            spec("wf3", &[Item], &[]),
            spec("wf4", &[Item], &[Bill]),
            spec("wf5", &[Date, Time, Item], &[Bill, Ship]),
        ],
    )
}

/// Q9 (Table 9) — eight window functions.
pub fn q9(cfg: &WsConfig) -> WindowQuery {
    WindowQuery::new(
        cfg.schema(),
        vec![
            spec("wf1", &[Item], &[Bill, Date]),
            spec("wf2", &[Item, Time], &[Date]),
            spec("wf3", &[Item], &[Time]),
            spec("wf4", &[], &[Item, Date]),
            spec("wf5", &[Bill, Date], &[Time]),
            spec("wf6", &[Bill], &[Time]),
            spec("wf7", &[Date, Time], &[]),
            spec("wf8", &[], &[Time]),
        ],
    )
}

/// The attribute pool for Table 11's random queries (Table 2's columns).
pub fn table11_pool() -> Vec<wf_common::AttrId> {
    vec![
        Date.attr(),
        Time.attr(),
        Ship.attr(),
        Item.attr(),
        Bill.attr(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_arities_match_paper() {
        let cfg = WsConfig::default();
        assert_eq!(q6(&cfg).specs.len(), 2);
        assert_eq!(q7(&cfg).specs.len(), 5);
        assert_eq!(q8(&cfg).specs.len(), 5);
        assert_eq!(q9(&cfg).specs.len(), 8);
        assert_eq!(q1().wpk().len(), 1);
        assert_eq!(q2().wpk().len(), 2);
        assert_eq!(q3().wpk().len(), 1);
        assert_eq!(q4_q5().wok().len(), 1);
        assert_eq!(table11_pool().len(), 5);
    }

    #[test]
    fn q8_differs_from_q7_as_described() {
        let cfg = WsConfig::default();
        let q7 = q7(&cfg);
        let q8 = q8(&cfg);
        // wf4: item moves from WOK into WPK.
        assert!(q7.specs[3].wpk().is_empty());
        assert!(q8.specs[3].wpk().contains(WsColumn::Item.attr()));
        // wf5: bill moves from WPK into WOK.
        assert!(q7.specs[4].wpk().contains(WsColumn::Bill.attr()));
        assert!(!q8.specs[4].wpk().contains(WsColumn::Bill.attr()));
    }
}
