//! `repro regress` — machine-readable bench regression tracking.
//!
//! Runs a small, fixed, fully deterministic workload set (row count pinned
//! regardless of `--rows` so the checked-in baseline stays comparable),
//! writes `results/BENCH_9.json`, and — when `results/BENCH_9.baseline.json`
//! exists — fails with a non-zero exit if any workload's **modeled cost**
//! or **peak resident memory** regressed by more than 2× against the
//! baseline. Modeled cost comes from deterministic counters and peak
//! residency from the segment store's high-water mark, so both gates are
//! machine-independent; wall clock (and the derived `rows_per_sec` column)
//! is recorded for trend inspection but never gated (CI noise) — except
//! when `WF_REGRESS_MIN_WALL_SPEEDUP` is set (the CI multi-core axis sets
//! it after confirming `nproc > 1`), which additionally requires the
//! parallel chain's wall speedup over its serial execution to reach the
//! given threshold.
//!
//! The set also measures the fast paths directly:
//! * `fig3_radix` / `fig3_comparator` — the fig3 sort microbench on the
//!   LSD-radix backend over normalized key prefixes vs. the
//!   `RowComparator` reference (wall-clock speedup printed; the radix
//!   backend is the columnar-era default),
//! * `filter_vectorized` / `filter_rowwise` — the same WHERE-filtered
//!   chain with the columnar block path (vectorized predicate masks) on
//!   vs. off; counters must be bit-identical, wall shows the win,
//! * `fs_sort_*` / `hs_sort_*` — the fig3 FS-vs-HS sort-dominated
//!   workloads with normalized byte keys on vs. the `RowComparator`
//!   reference (wall-clock speedup printed),
//! * `chain_shared_wpk_*` — the two-window shared-partition-key chain with
//!   boundary reuse on vs. off (comparison reduction printed),
//! * `par_chain_*` — the planner-driven parallel chain span: a two-window
//!   query (rank + one-pass SUM over the same partition key) planned
//!   serially and with a 4-worker budget (the planner must emit a
//!   `ReorderOp::Par` span covering both windows, so the per-worker shard
//!   sort, both window evaluations and the fused segmented sort all run
//!   inside the worker); the parallel entry records its wall-clock speedup
//!   over the serial execution of the same plan and asserts governed pool
//!   residency and a ≥ 1.8× modeled plan speedup,
//! * `groupby_*` — the same hash GROUP BY computed serially and through
//!   the 4-worker scatter/merge path (identical rows in identical order;
//!   the wall ratio is the scatter/merge speedup, gateable via
//!   `WF_REGRESS_MIN_GROUPBY_WALL_SPEEDUP` like the chain's wall gate),
//! * `spill_file` / `spill_objectstore` / `spill_objectstore_prefetch` —
//!   the spill-heavy fig3 FS sort run against each storage backend with
//!   knobs pinned in code (compression on; the object-store rows add
//!   modeled request latency): deterministic counters asserted identical
//!   across the three rows, wall read per backend, and the prefetch row
//!   records — and gates at ≥ 1.3× — the read-ahead speedup over cold
//!   reads on the latency-knobbed store,
//! * `concurrent_inflight_{1,8,64}` — 64 executions of one statement
//!   through the served session front end at 1/8/64 in-flight sessions
//!   (admission-governed, per-query budgets pinned): deterministic columns
//!   identical across levels by the isolation contract (asserted), pool
//!   peak asserted ≤ the pool budget, and p50/p99 latency + statements/s
//!   recorded per level.

use crate::paper_mb_to_blocks;
use crate::queries;
use crate::report::ReportTable;
use std::fmt::Write as _;
use wf_core::cost::TableStats;
use wf_core::plan::{finalize_chain, PlanContext, PlanStep, ReorderOp};
use wf_core::planner::{optimize, Scheme};
use wf_core::props::SegProps;
use wf_core::query::WindowQuery;
use wf_core::runtime::{execute_plan, ExecEnv};
use wf_core::spec::WindowSpec;
use wf_datagen::WsConfig;
use wf_storage::{ObjectStoreConfig, SpillConfig, Table};

/// Pinned size of the regression workloads (see module docs).
pub const REGRESS_ROWS: usize = 40_000;
/// Pinned size of the parallel-chain workloads (larger: the wall-clock
/// speedup headline needs the sort to dominate the serial phases).
pub const PAR_ROWS: usize = 150_000;
/// Worker count of the parallel-chain workload.
pub const PAR_WORKERS: usize = 4;
/// Modeled-cost regression threshold.
pub const REGRESS_FACTOR: f64 = 2.0;

/// One measured workload.
#[derive(Debug, Clone)]
pub struct RegressEntry {
    pub name: String,
    pub modeled_ms: f64,
    pub wall_ms: f64,
    /// Input rows divided by wall seconds — the throughput reading of the
    /// wall column (informational like all wall numbers; never gated).
    pub rows_per_sec: f64,
    pub comparisons: u64,
    pub io_blocks: u64,
    pub key_encodes: u64,
    /// Peak tracked residency of the chain's segment store, in blocks —
    /// the `O(M + largest unit)` bound made measurable (0 for the
    /// sort-only microbenches, which move no segments).
    pub peak_resident_blocks: u64,
    /// Weakest window-evaluation residency class across the workload's
    /// chain (`one-pass` / `ring` / `buffered`; `-` for sort-only
    /// workloads with no window step).
    pub residency_class: String,
    /// Wall-clock speedup of this workload over its serial execution (only
    /// set on the parallel-chain workloads; 0 = not applicable).
    /// Informational like all wall numbers — and hardware-dependent: a
    /// single-core host records ≈ 1.0 by construction (the harness prints
    /// the core count next to it).
    pub par_speedup: f64,
    /// Modeled elapsed speedup of the parallel plan over the serial plan
    /// for the same query (planned cost ratio under the elapsed model —
    /// deterministic and machine-independent; only set on the parallel
    /// workloads).
    pub par_est_speedup: f64,
    /// Wall-clock speedup of read-ahead over cold synchronous reads on the
    /// same latency-knobbed spill backend (only set on the
    /// `spill_objectstore_prefetch` workload; 0 = not applicable). Unlike
    /// the other wall columns this one is latency-driven, not core-driven —
    /// prefetch workers overlap modeled network sleeps, so the speedup
    /// reproduces on a single-core host and is asserted ≥ 1.3×.
    pub prefetch_speedup: f64,
    /// Median per-statement latency (wall ms; only set on the served
    /// concurrency workloads, informational like all wall numbers).
    pub p50_ms: f64,
    /// 99th-percentile per-statement latency (wall ms; concurrency
    /// workloads only).
    pub p99_ms: f64,
    /// Completed statements per second over the level's whole wall time
    /// (concurrency workloads only).
    pub qps: f64,
    /// Per-step modeled cost attribution `(label, modeled ms)` of the
    /// workload's chain, scan slot included (empty for the operator-less
    /// microbenches). For `Par` spans the innermost fused slot absorbs the
    /// whole span's worker-side cost — that slot is the span's attribution.
    pub stage_modeled_ms: Vec<(String, f64)>,
    /// Peak resident pool blocks per worker shard, recorded when scheduler
    /// phases absorb their workers (empty for serial executions).
    pub worker_peak_blocks: Vec<u64>,
    /// Full three-domain metrics snapshot ([`wf_core::ExecMetrics`]) of the
    /// workload's execution, embedded under `"exec"` in the BENCH JSON
    /// (`None` for microbenches that bypass plan execution).
    pub metrics: Option<wf_core::ExecMetrics>,
}

fn run_plan(plan: &wf_core::plan::Plan, table: &Table, env: &ExecEnv, name: &str) -> RegressEntry {
    let report = execute_plan(plan, table, env).expect("regress workload");
    let wall_ms = report.wall.as_secs_f64() * 1000.0;
    let weights = env.weights();
    RegressEntry {
        name: name.to_string(),
        modeled_ms: report.modeled_ms,
        wall_ms,
        rows_per_sec: table.row_count() as f64 / (wall_ms / 1000.0).max(1e-9),
        comparisons: report.work.comparisons,
        io_blocks: report.work.io_blocks(),
        key_encodes: report.work.key_encodes,
        peak_resident_blocks: report.store.peak_resident_blocks(),
        residency_class: report.weakest_eval_class().label().to_string(),
        par_speedup: 0.0,
        par_est_speedup: 0.0,
        prefetch_speedup: 0.0,
        p50_ms: 0.0,
        p99_ms: 0.0,
        qps: 0.0,
        stage_modeled_ms: report
            .step_metrics
            .iter()
            .map(|m| (m.label.clone(), weights.modeled_ms(&m.work)))
            .collect(),
        worker_peak_blocks: report.worker_peak_blocks.clone(),
        metrics: Some(wf_core::ExecMetrics::from_report(&report)),
    }
}

fn single_op_plan(
    spec: &WindowSpec,
    op: ReorderOp,
    stats: &TableStats,
    m_blocks: u64,
) -> wf_core::plan::Plan {
    let ctx = PlanContext::new(stats, m_blocks);
    finalize_chain(
        "regress",
        std::slice::from_ref(spec),
        &SegProps::unordered(),
        1,
        vec![PlanStep { wf: 0, reorder: op }],
        &ctx,
    )
}

/// Run the workload set. Returns the entries (deterministic order).
pub fn run_workloads() -> Vec<RegressEntry> {
    let cfg = WsConfig {
        rows: REGRESS_ROWS,
        d_item: (REGRESS_ROWS as u64 / 20).max(64),
        d_bill: (REGRESS_ROWS as u64 / 10).max(64),
        ..WsConfig::default()
    };
    let table = cfg.generate();
    let stats = TableStats::from_table(&table);
    let blocks = table.block_count();
    let mut out = Vec::new();

    // fig3 FS-vs-HS at a spill-heavy and an in-memory-ish budget, with the
    // byte-key path (default) and the comparator reference.
    let spec = queries::q1();
    for &m_mb in &[25.0, 500.0] {
        let m = paper_mb_to_blocks(m_mb, blocks);
        let fs = ReorderOp::Fs {
            key: wf_core::plan::default_fs_key(&spec),
        };
        let hs = ReorderOp::Hs {
            whk: spec.wpk().clone(),
            key: wf_core::plan::default_fs_key(&spec),
            n_buckets: wf_core::cost::hs_bucket_count(&stats, spec.wpk(), m),
            mfv: vec![],
        };
        for (op, op_name) in [(fs, "fs"), (hs, "hs")] {
            let plan = single_op_plan(&spec, op, &stats, m);
            for (norm, key_name) in [(true, "normkeys"), (false, "comparator")] {
                let env = ExecEnv::with_memory_blocks(m).with_toggles(norm, true);
                // Best of 3 for a stabler wall reading; counters identical
                // across repetitions (execute_plan reports tracker deltas).
                let mut best: Option<RegressEntry> = None;
                for _ in 0..3 {
                    let e = run_plan(
                        &plan,
                        &table,
                        &env,
                        &format!("{op_name}_sort_m{m_mb:.0}_{key_name}"),
                    );
                    if best.as_ref().is_none_or(|b| e.wall_ms < b.wall_ms) {
                        best = Some(e);
                    }
                }
                out.push(best.expect("three runs"));
            }
        }
    }

    // Sort-only microbench: the fig3 FS sort key over the same table with
    // an in-memory budget — wall clock is sort-dominated here (no spill
    // traffic, no window evaluation). `fig3_radix` takes the default path:
    // normalized key prefixes sorted by the LSD-radix backend;
    // `fig3_comparator` is the `RowComparator` reference it replaced.
    let fs_key = wf_core::plan::default_fs_key(&spec);
    for (norm, name) in [(true, "fig3_radix"), (false, "fig3_comparator")] {
        let mut best: Option<RegressEntry> = None;
        for _ in 0..5 {
            let env = wf_exec::OpEnv::with_memory_blocks(blocks * 4).with_toggles(norm, true);
            let rows = table.rows().to_vec();
            let sort_key = wf_exec::SortKey::new(&fs_key);
            let t = std::time::Instant::now();
            let sorted = wf_exec::sorter::sort_rows(rows, &sort_key, &env).expect("sort");
            let wall_ms = t.elapsed().as_secs_f64() * 1000.0;
            assert_eq!(sorted.len(), table.row_count());
            let s = env.tracker.snapshot();
            let e = RegressEntry {
                name: name.to_string(),
                modeled_ms: wf_storage::CostWeights::default().modeled_ms(&s),
                wall_ms,
                rows_per_sec: table.row_count() as f64 / (wall_ms / 1000.0).max(1e-9),
                comparisons: s.comparisons,
                io_blocks: s.io_blocks(),
                key_encodes: s.key_encodes,
                peak_resident_blocks: env.store.snapshot().peak_resident_blocks(),
                residency_class: "-".to_string(),
                par_speedup: 0.0,
                par_est_speedup: 0.0,
                prefetch_speedup: 0.0,
                p50_ms: 0.0,
                p99_ms: 0.0,
                qps: 0.0,
                stage_modeled_ms: vec![],
                worker_peak_blocks: vec![],
                metrics: None,
            };
            if best.as_ref().is_none_or(|b| e.wall_ms < b.wall_ms) {
                best = Some(e);
            }
        }
        out.push(best.expect("five runs"));
    }

    // Window-evaluation residency classes: one workload per streaming
    // discipline (one-pass / ring / buffered), at a spill-heavy budget so
    // the spilled evaluation paths actually run — the residency-class
    // column plus the peak-residency gate watch all three.
    {
        use wf_datagen::WsColumn::{Item, Quantity, SoldTime};
        let m = paper_mb_to_blocks(25.0, blocks);
        let order = wf_common::SortSpec::new(vec![wf_common::OrdElem::asc(SoldTime.attr())]);
        let cases: Vec<(&str, WindowSpec)> = vec![
            (
                "window_onepass_sum_default",
                WindowSpec::new(
                    "s",
                    wf_core::spec::WindowFunction::Sum(Quantity.attr()),
                    vec![Item.attr()],
                    order.clone(),
                ),
            ),
            (
                "window_ring_avg_rows",
                WindowSpec::new(
                    "a",
                    wf_core::spec::WindowFunction::Avg(Quantity.attr()),
                    vec![Item.attr()],
                    order.clone(),
                )
                .with_frame(wf_core::spec::FrameSpec {
                    units: wf_core::spec::FrameUnits::Rows,
                    start: wf_core::spec::Bound::Preceding(2),
                    end: wf_core::spec::Bound::CurrentRow,
                }),
            ),
            (
                // PR 6: the variance family ring-streams bounded ROWS
                // frames (sum-of-squares prefix lane).
                "window_ring_stddev_rows",
                WindowSpec::new(
                    "sd",
                    wf_core::spec::WindowFunction::StddevSamp(Quantity.attr()),
                    vec![Item.attr()],
                    order.clone(),
                )
                .with_frame(wf_core::spec::FrameSpec {
                    units: wf_core::spec::FrameUnits::Rows,
                    start: wf_core::spec::Bound::Preceding(4),
                    end: wf_core::spec::Bound::CurrentRow,
                }),
            ),
            (
                // PR 6: pure-offset RANGE frames ring-stream via the
                // monotone two-pointer frame resolver.
                "window_ring_sum_range_offset",
                WindowSpec::new(
                    "sr",
                    wf_core::spec::WindowFunction::Sum(Quantity.attr()),
                    vec![Item.attr()],
                    order.clone(),
                )
                .with_frame(wf_core::spec::FrameSpec {
                    units: wf_core::spec::FrameUnits::Range,
                    start: wf_core::spec::Bound::Preceding(2),
                    end: wf_core::spec::Bound::Following(2),
                }),
            ),
            (
                "window_buffered_count_range",
                WindowSpec::new(
                    "c",
                    wf_core::spec::WindowFunction::Count(None),
                    vec![Item.attr()],
                    order,
                )
                .with_frame(wf_core::spec::FrameSpec {
                    units: wf_core::spec::FrameUnits::Range,
                    start: wf_core::spec::Bound::Preceding(2),
                    end: wf_core::spec::Bound::CurrentRow,
                }),
            ),
        ];
        for (name, spec) in cases {
            let fs = ReorderOp::Fs {
                key: wf_core::plan::default_fs_key(&spec),
            };
            let plan = single_op_plan(&spec, fs, &stats, m);
            let env = ExecEnv::with_memory_blocks(m);
            let e = run_plan(&plan, &table, &env, name);
            // The workload names encode their expected discipline — a
            // mismatch means a streaming evaluator silently fell back.
            let expected = if name.contains("onepass") {
                "one-pass"
            } else if name.contains("ring") {
                "ring"
            } else {
                "buffered"
            };
            assert_eq!(e.residency_class, expected, "{name} evaluation class");
            out.push(e);
        }
    }

    // Parallel-chain workloads: a two-window chain (a rank and a one-pass
    // SUM sharing the partition key) over a larger, sort-dominated table,
    // planned serially (workers = 1, must stay FS ∘ SS) and with a
    // 4-worker budget. Under the worker budget the planner emits a
    // ReorderOp::Par *span* covering both windows: the per-worker shard
    // sort, both window evaluations and the fused segmented sort run
    // inside the worker and only finished rows are merged. Wall speedup
    // serial/parallel rides on the parallel entry; residency must stay
    // governed despite 4 concurrent worker chains.
    let par_cfg = WsConfig {
        rows: PAR_ROWS,
        d_item: (PAR_ROWS as u64 / 100).max(64),
        d_bill: (PAR_ROWS as u64 / 10).max(64),
        ..WsConfig::default()
    };
    let par_table = par_cfg.generate();
    let par_blocks = par_table.block_count();
    {
        let par_stats = TableStats::from_table(&par_table);
        // 150 paper-MB equivalent: one-pass serial FS no longer beats HS's
        // flat partition I/O here, but splitting the whole chain four ways
        // does — the regime the cost model favors Par in.
        let m = paper_mb_to_blocks(150.0, par_blocks);
        let query = par_chain_query(par_table.schema().clone());
        // One plan — emitted by the planner under the 4-worker budget —
        // executed with the scheduler forced serial (1 thread) and at the
        // full pool (4 threads). The determinism contract makes the two
        // executions bit-identical in rows and counters; the wall ratio is
        // the scheduler's parallel speedup.
        let env_plan = ExecEnv::with_memory_blocks(m).with_par_workers(PAR_WORKERS);
        let plan = optimize(&query, &par_stats, Scheme::Cso, &env_plan).expect("par plan");
        assert!(
            matches!(plan.steps[0].reorder, ReorderOp::Par { .. }),
            "cost model must favor ReorderOp::Par on this workload: {}",
            plan.chain_string()
        );
        // The second window must fuse into the span (SS-compatible after
        // the head sort) so its evaluation runs inside the workers.
        assert!(
            matches!(
                plan.steps[1].reorder,
                ReorderOp::Ss { .. } | ReorderOp::None
            ),
            "second window must fuse into the parallel span: {}",
            plan.chain_string()
        );
        let serial_plan = optimize(
            &query,
            &par_stats,
            Scheme::Cso,
            &ExecEnv::with_memory_blocks(m).with_par_workers(1),
        )
        .expect("serial plan");
        assert!(
            serial_plan
                .steps
                .iter()
                .all(|s| !matches!(s.reorder, ReorderOp::Par { .. })),
            "no worker budget → no Par: {}",
            serial_plan.chain_string()
        );
        let best_for = |threads: usize, name: &str| -> RegressEntry {
            let mut best: Option<RegressEntry> = None;
            for _ in 0..3 {
                let env = ExecEnv::with_memory_blocks(m)
                    .with_par_workers(PAR_WORKERS)
                    .with_worker_threads(threads);
                let e = run_plan(&plan, &par_table, &env, name);
                // Governed residency: the chain-span form is M + Σ_w
                // (M_w + unit_w) + unit, where unit_w is the largest
                // in-span partition a worker holds while evaluating its
                // windows — asserted with the suite's usual 4× constant
                // (builders, rounding) and a per-worker unit allowance,
                // which is still far below the relation (the second
                // assert).
                let unit_w = par_blocks / 16;
                assert!(
                    e.peak_resident_blocks
                        <= 4 * (2 * m + PAR_WORKERS as u64 * (m / 2 + unit_w)) + 8,
                    "parallel peak {} blocks vs M={m}",
                    e.peak_resident_blocks
                );
                assert!(
                    e.peak_resident_blocks < par_blocks / 2,
                    "parallel peak {} is relation-sized ({par_blocks})",
                    e.peak_resident_blocks
                );
                if best.as_ref().is_none_or(|b| e.wall_ms < b.wall_ms) {
                    best = Some(e);
                }
            }
            best.expect("three runs")
        };
        let serial = best_for(1, "par_chain_serial");
        let mut par = best_for(PAR_WORKERS, "par_chain_w4");
        assert_eq!(
            (
                serial.comparisons,
                serial.io_blocks,
                serial.peak_resident_blocks
            ),
            (par.comparisons, par.io_blocks, par.peak_resident_blocks),
            "parallel chain must be bit-identical to its serial execution"
        );
        par.par_speedup = serial.wall_ms / par.wall_ms;
        // Deterministic headline: the planned elapsed-cost ratio of the
        // parallel plan over the best serial plan. This is the cost-model
        // win the planner acts on (machine-independent), and it must be
        // substantial — wall confirms it on hosts with cores to spare.
        let w = env_plan.weights();
        par.par_est_speedup = serial_plan.est_cost.ms(&w) / plan.est_cost.ms(&w);
        assert!(
            par.par_est_speedup >= 1.8,
            "modeled parallel chain speedup collapsed: {:.2}x (serial {} vs parallel {})",
            par.par_est_speedup,
            serial_plan.chain_string(),
            plan.chain_string()
        );
        out.push(serial);
        out.push(par);
    }

    // Parallel GROUP BY: the same hash aggregate computed by the serial
    // operator and through the 4-worker scatter/merge path. The parallel
    // path must emit identical rows in identical order; the wall ratio is
    // the scatter/merge speedup (hardware-dependent and informational).
    {
        use wf_datagen::WsColumn::{Item, Quantity};
        let keys = [Item.attr()];
        let aggs = [
            wf_exec::GroupAgg::CountStar,
            wf_exec::GroupAgg::Sum(Quantity.attr()),
        ];
        let m = paper_mb_to_blocks(150.0, par_blocks);
        let gb_run = |name: &str, workers: usize| -> (RegressEntry, Table) {
            let mut best: Option<(RegressEntry, Table)> = None;
            for _ in 0..3 {
                let env = ExecEnv::with_memory_blocks(m);
                let t0 = std::time::Instant::now();
                let grouped =
                    wf_exec::group_by_hash_par(&par_table, &keys, &aggs, workers, env.op_env())
                        .expect("groupby workload");
                let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
                let s = env.tracker().snapshot();
                let e = RegressEntry {
                    name: name.to_string(),
                    modeled_ms: env.weights().modeled_ms(&s),
                    wall_ms,
                    rows_per_sec: par_table.row_count() as f64 / (wall_ms / 1000.0).max(1e-9),
                    comparisons: s.comparisons,
                    io_blocks: s.io_blocks(),
                    key_encodes: s.key_encodes,
                    peak_resident_blocks: env.op_env().store.snapshot().peak_resident_blocks(),
                    residency_class: "-".to_string(),
                    par_speedup: 0.0,
                    par_est_speedup: 0.0,
                    prefetch_speedup: 0.0,
                    p50_ms: 0.0,
                    p99_ms: 0.0,
                    qps: 0.0,
                    stage_modeled_ms: vec![],
                    worker_peak_blocks: env.op_env().store.worker_peak_blocks(),
                    metrics: None,
                };
                if best.as_ref().is_none_or(|(b, _)| e.wall_ms < b.wall_ms) {
                    best = Some((e, grouped));
                }
            }
            best.expect("three runs")
        };
        let (serial, by_serial) = gb_run("groupby_serial", 1);
        let (mut par, by_par) = gb_run("groupby_par", PAR_WORKERS);
        assert_eq!(
            by_serial.rows(),
            by_par.rows(),
            "parallel GROUP BY must match the serial operator row-for-row"
        );
        par.par_speedup = serial.wall_ms / par.wall_ms;
        out.push(serial);
        out.push(par);
    }

    // Vectorized filter: the same WHERE-filtered rank with the columnar
    // block path on (predicate evaluated as a lane-wise mask over typed
    // columns) vs. off (row-at-a-time reference). The toggle must be
    // invisible to every deterministic counter; wall shows the win.
    {
        use wf_datagen::WsColumn::Quantity;
        let m = paper_mb_to_blocks(75.0, blocks);
        let fs = ReorderOp::Fs {
            key: wf_core::plan::default_fs_key(&spec),
        };
        let mut plan = single_op_plan(&spec, fs, &stats, m);
        plan.filter = Some(wf_exec::Predicate::Gt(
            Quantity.attr(),
            wf_common::Value::Int(50),
        ));
        let mut pair = Vec::new();
        for (columnar, name) in [(true, "filter_vectorized"), (false, "filter_rowwise")] {
            let env = ExecEnv::with_memory_blocks(m).with_columnar(columnar);
            let mut best: Option<RegressEntry> = None;
            for _ in 0..3 {
                let e = run_plan(&plan, &table, &env, name);
                if best.as_ref().is_none_or(|b| e.wall_ms < b.wall_ms) {
                    best = Some(e);
                }
            }
            pair.push(best.expect("three runs"));
        }
        assert_eq!(
            (
                pair[0].comparisons,
                pair[0].io_blocks,
                pair[0].key_encodes,
                pair[0].peak_resident_blocks
            ),
            (
                pair[1].comparisons,
                pair[1].io_blocks,
                pair[1].key_encodes,
                pair[1].peak_resident_blocks
            ),
            "columnar filter must be bit-identical to the row path"
        );
        out.extend(pair);
    }

    // Two-window shared-WPK chain: boundary reuse on vs. off.
    let chain_query = chain_query(&table);
    for (reuse, name) in [
        (true, "chain_shared_wpk_reuse"),
        (false, "chain_shared_wpk_noreuse"),
    ] {
        let env =
            ExecEnv::with_memory_blocks(paper_mb_to_blocks(75.0, blocks)).with_toggles(true, reuse);
        let plan = optimize(&chain_query, &stats, Scheme::Cso, &env).expect("plan");
        out.push(run_plan(&plan, &table, &env, name));
    }

    // Spill-backend family: the fig3 FS sort at the spill-heavy budget,
    // executed against each storage backend with knobs pinned in code (the
    // `WF_SPILL_BACKEND` CI axis steers the *test suite's* default backend,
    // never these rows). Backends live below the charging layer, so the
    // deterministic columns are asserted bit-identical across all three
    // rows — only wall differs, which is exactly what the per-backend wall
    // columns read out. The prefetch entry additionally records — and gates
    // at ≥ 1.3× — the wall speedup of async read-ahead over cold
    // synchronous reads on the latency-knobbed object store. That speedup
    // is latency-driven (prefetch workers overlap the modeled network
    // sleeps), so it reproduces on a single-core host, unlike the
    // core-driven `par_*` wall numbers.
    {
        // The fig3 m=500 point: still spills a few large runs (enough
        // traffic to measure), but keeps the latency-knobbed object-store
        // rows to a couple of seconds of modeled network time.
        let m = paper_mb_to_blocks(500.0, blocks);
        let fs = ReorderOp::Fs {
            key: wf_core::plan::default_fs_key(&spec),
        };
        let plan = single_op_plan(&spec, fs, &stats, m);
        // LAN-ish object store with a pronounced time-to-first-byte on
        // GETs — the read-side latency read-ahead exists to hide.
        let knobs = ObjectStoreConfig {
            request_latency: std::time::Duration::from_micros(100),
            first_byte_delay: std::time::Duration::from_micros(600),
            throughput_bytes_per_sec: 400 << 20,
        };
        let spill_run = |name: &str, cfg: SpillConfig| -> RegressEntry {
            let env = ExecEnv::with_memory_blocks(m).with_spill(cfg);
            run_plan(&plan, &table, &env, name)
        };
        let file = spill_run("spill_file", SpillConfig::file().with_compress(true));
        let cold = spill_run(
            "spill_objectstore",
            SpillConfig::object_store(knobs).with_compress(true),
        );
        let mut pre = spill_run(
            "spill_objectstore_prefetch",
            SpillConfig::object_store(knobs)
                .with_compress(true)
                .with_prefetch(4),
        );
        assert!(
            file.io_blocks > 0,
            "the spill workloads must actually spill"
        );
        for e in [&cold, &pre] {
            assert_eq!(
                (
                    file.comparisons,
                    file.io_blocks,
                    file.key_encodes,
                    file.peak_resident_blocks
                ),
                (
                    e.comparisons,
                    e.io_blocks,
                    e.key_encodes,
                    e.peak_resident_blocks
                ),
                "{}: spill backends must be counter-invisible",
                e.name
            );
        }
        pre.prefetch_speedup = cold.wall_ms / pre.wall_ms.max(1e-9);
        assert!(
            pre.prefetch_speedup >= 1.3,
            "read-ahead must buy back >= 1.3x of the object store's GET latency: \
             {:.2}x (cold {:.1} ms vs prefetch {:.1} ms)",
            pre.prefetch_speedup,
            cold.wall_ms,
            pre.wall_ms
        );
        out.push(file);
        out.push(cold);
        out.push(pre);
    }

    // Served-concurrency family: the same statement pushed through the
    // session front end at 1, 8 and 64 in-flight sessions — always
    // CONCURRENT_STATEMENTS total executions, so the deterministic columns
    // (modeled ms, comparisons, I/O: per-statement counters × 64) are
    // identical across levels and gateable, while p50/p99/qps read out the
    // queueing behavior. Per-query budget and worker count are pinned, so
    // a statement's spill decisions cannot see its neighbours; pool peak is
    // asserted governed in code and recorded as 0 (the wall-timing of
    // admissions makes the measured peak scheduling-dependent, which must
    // not arm the baseline peak gate).
    out.extend(run_concurrency_family());
    out
}

/// Pinned size of the served-concurrency workloads.
pub const CONCURRENT_ROWS: usize = 12_000;
/// Total statements executed per concurrency level.
pub const CONCURRENT_STATEMENTS: usize = 64;
/// In-flight session counts of the concurrency family.
pub const CONCURRENT_LEVELS: [usize; 3] = [1, 8, 64];

fn run_concurrency_family() -> Vec<RegressEntry> {
    use std::time::Instant;

    let cfg = WsConfig {
        rows: CONCURRENT_ROWS,
        d_item: (CONCURRENT_ROWS as u64 / 20).max(64),
        d_bill: (CONCURRENT_ROWS as u64 / 10).max(64),
        ..WsConfig::default()
    };
    let table = cfg.generate();
    let sql = "SELECT *, \
        rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r, \
        sum(ws_quantity) OVER (PARTITION BY ws_bill_customer_sk ORDER BY ws_sold_date_sk) AS s \
        FROM web_sales";
    const POOL_BLOCKS: u64 = 64;

    let mut out = Vec::new();
    for &inflight in &CONCURRENT_LEVELS {
        let db = wfopt::DatabaseConfig::new()
            .memory_blocks(POOL_BLOCKS)
            .max_concurrent(4)
            .per_query_blocks(16)
            .queue_depth(CONCURRENT_STATEMENTS)
            .worker_threads(1)
            .open();
        db.register("web_sales", table.clone()).expect("register");
        let per_session = CONCURRENT_STATEMENTS / inflight;
        let t0 = Instant::now();
        let handles: Vec<_> = (0..inflight)
            .map(|_| {
                let session = db.session();
                std::thread::spawn(move || {
                    let mut lat = Vec::with_capacity(per_session);
                    let mut modeled = 0.0f64;
                    let mut cmp = 0u64;
                    let mut io = 0u64;
                    let mut enc = 0u64;
                    for _ in 0..per_session {
                        let o = session.execute(sql).expect("concurrency workload");
                        lat.push(o.wall.as_secs_f64() * 1000.0);
                        modeled += o.report.modeled_ms;
                        cmp += o.report.work.comparisons;
                        io += o.report.work.io_blocks();
                        enc += o.report.work.key_encodes;
                    }
                    (lat, modeled, cmp, io, enc)
                })
            })
            .collect();
        let mut lats = Vec::with_capacity(CONCURRENT_STATEMENTS);
        let (mut modeled, mut cmp, mut io, mut enc) = (0.0f64, 0u64, 0u64, 0u64);
        for h in handles {
            let (l, m, c, i, k) = h.join().expect("concurrency session");
            lats.extend(l);
            modeled += m;
            cmp += c;
            io += i;
            enc += k;
        }
        let wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
        lats.sort_by(|a, b| a.total_cmp(b));
        let p50 = lats[lats.len() / 2];
        let p99 = lats[(lats.len() * 99 / 100).min(lats.len() - 1)];

        // Governed residency under load — asserted here with the exact pool
        // budget, not baseline-gated (see the call-site comment).
        let pool_peak = db.pool_snapshot().peak_resident_blocks();
        assert!(
            pool_peak <= POOL_BLOCKS,
            "served pool peak {pool_peak} blocks exceeds the {POOL_BLOCKS}-block budget \
             at {inflight} in flight"
        );
        let stats = db.admission_stats();
        assert_eq!(stats.completed, CONCURRENT_STATEMENTS as u64);
        assert_eq!(stats.rejected, 0, "queue_depth must absorb every arrival");

        out.push(RegressEntry {
            name: format!("concurrent_inflight_{inflight}"),
            modeled_ms: modeled,
            wall_ms,
            rows_per_sec: 0.0,
            comparisons: cmp,
            io_blocks: io,
            key_encodes: enc,
            peak_resident_blocks: 0,
            residency_class: "-".to_string(),
            par_speedup: 0.0,
            par_est_speedup: 0.0,
            prefetch_speedup: 0.0,
            p50_ms: p50,
            p99_ms: p99,
            qps: CONCURRENT_STATEMENTS as f64 / (wall_ms / 1000.0).max(1e-9),
            stage_modeled_ms: vec![],
            worker_peak_blocks: vec![],
            metrics: None,
        });
    }
    // The bit-identity contract, asserted across the whole family: 64
    // statements cost exactly the same deterministic work no matter how
    // many ran at once.
    for pair in out.windows(2) {
        assert_eq!(
            (pair[0].comparisons, pair[0].io_blocks, pair[0].key_encodes),
            (pair[1].comparisons, pair[1].io_blocks, pair[1].key_encodes),
            "{} and {} must perform identical deterministic work",
            pair[0].name,
            pair[1].name
        );
    }
    out
}

/// The parallel-chain regression query — a rank and a one-pass SUM sharing
/// the partition key — also the workload `repro explain par` traces.
pub fn par_chain_query(schema: wf_common::Schema) -> WindowQuery {
    use wf_datagen::WsColumn::{Item, Quantity, SoldTime, Warehouse};
    WindowQuery::new(
        schema,
        vec![
            WindowSpec::rank(
                "r",
                vec![Item.attr()],
                wf_common::SortSpec::new(vec![wf_common::OrdElem::asc(SoldTime.attr())]),
            ),
            WindowSpec::new(
                "s",
                wf_core::spec::WindowFunction::Sum(Quantity.attr()),
                vec![Item.attr()],
                wf_common::SortSpec::new(vec![wf_common::OrdElem::asc(Warehouse.attr())]),
            ),
        ],
    )
}

fn chain_query(table: &Table) -> WindowQuery {
    use wf_datagen::WsColumn::{Item, SoldTime, Warehouse};
    let specs = vec![
        WindowSpec::rank(
            "r1",
            vec![Item.attr()],
            wf_common::SortSpec::new(vec![wf_common::OrdElem::asc(SoldTime.attr())]),
        ),
        WindowSpec::rank(
            "r2",
            vec![Item.attr()],
            wf_common::SortSpec::new(vec![wf_common::OrdElem::asc(Warehouse.attr())]),
        ),
    ];
    WindowQuery::new(table.schema().clone(), specs)
}

/// Serialize entries as `BENCH_9.json`.
pub fn to_json(entries: &[RegressEntry]) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema\": \"bench9-v1\",");
    let _ = writeln!(s, "  \"rows\": {REGRESS_ROWS},");
    let _ = writeln!(s, "  \"par_rows\": {PAR_ROWS},");
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"modeled_ms\": {:.4}, \"wall_ms\": {:.3}, \
             \"rows_per_sec\": {:.0}, \
             \"comparisons\": {}, \"io_blocks\": {}, \"key_encodes\": {}, \
             \"peak_resident_blocks\": {}, \"residency_class\": \"{}\", \
             \"par_speedup\": {:.2}, \"par_est_speedup\": {:.2}, \
             \"prefetch_speedup\": {:.2}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"qps\": {:.1}}}",
            e.name,
            e.modeled_ms,
            e.wall_ms,
            e.rows_per_sec,
            e.comparisons,
            e.io_blocks,
            e.key_encodes,
            e.peak_resident_blocks,
            e.residency_class,
            e.par_speedup,
            e.par_est_speedup,
            e.prefetch_speedup,
            e.p50_ms,
            e.p99_ms,
            e.qps
        );
        if let Some(m) = &e.metrics {
            // Full three-domain snapshot (modeled cost / pool traffic /
            // wall) — already a single-line JSON object.
            s.truncate(s.len() - 1);
            let _ = write!(s, ", \"exec\": {}}}", m.to_json());
        }
        s.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extraction of `(name, modeled_ms, peak_resident_blocks)` tuples from a
/// BENCH_9-shaped JSON file, through the in-tree parser (`wf_common::Json`)
/// — entries may nest freely (the `"exec"` metrics object does). Files
/// without the peak column parse with peak 0, which disarms only the peak
/// gate; unparseable files yield no entries (the missing-baseline path).
pub fn parse_baseline(json: &str) -> Vec<(String, f64, u64)> {
    let Ok(doc) = wf_common::Json::parse(json) else {
        return Vec::new();
    };
    let Some(entries) = doc.get("entries").and_then(|e| e.as_array()) else {
        return Vec::new();
    };
    entries
        .iter()
        .filter_map(|e| {
            let name = e.get("name")?.as_str()?.to_string();
            let ms = e.get("modeled_ms")?.as_f64()?;
            let peak = e
                .get("peak_resident_blocks")
                .and_then(|p| p.as_u64())
                .unwrap_or(0);
            Some((name, ms, peak))
        })
        .collect()
}

/// Markdown table comparing the current run against the baseline —
/// modeled cost, peak resident blocks, per-worker residency peaks,
/// residency class, wall throughput and (for `Par` workloads) the
/// per-stage modeled-cost attribution — emitted into
/// `results/BENCH_9_summary.md` for the CI step summary.
pub fn step_summary_markdown(entries: &[RegressEntry], baseline: &[(String, f64, u64)]) -> String {
    let mut md = String::from("### `repro regress` — BENCH_9 comparison\n\n");
    let _ = writeln!(
        md,
        "| workload | class | modeled ms | baseline ms | Δ | peak blk | baseline blk | worker peaks | rows/s | p50/p99 ms | qps | ∥ speedup | prefetch | stage ms |"
    );
    let _ = writeln!(
        md,
        "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---|"
    );
    for e in entries {
        let base = baseline.iter().find(|(n, _, _)| *n == e.name);
        let (base_ms, base_peak, delta) = match base {
            Some((_, ms, peak)) => (
                format!("{ms:.2}"),
                format!("{peak}"),
                if *ms > 0.0 {
                    format!("{:+.1}%", 100.0 * (e.modeled_ms - ms) / ms)
                } else {
                    "n/a".to_string()
                },
            ),
            None => ("new".to_string(), "new".to_string(), "n/a".to_string()),
        };
        let speedup = if e.par_est_speedup > 0.0 {
            format!("{:.2}x est / {:.2}x wall", e.par_est_speedup, e.par_speedup)
        } else if e.par_speedup > 0.0 {
            format!("{:.2}x", e.par_speedup)
        } else {
            "–".to_string()
        };
        let rows_s = if e.rows_per_sec > 0.0 {
            format!("{:.0}k", e.rows_per_sec / 1000.0)
        } else {
            "–".to_string()
        };
        let peaks = if e.worker_peak_blocks.is_empty() {
            "–".to_string()
        } else {
            format!(
                "[{}]",
                e.worker_peak_blocks
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        // Per-stage modeled attribution, shown where worker spans exist
        // (the `Par` workloads) — elsewhere the single-stage breakdown
        // repeats the modeled column.
        let stages = if e.worker_peak_blocks.is_empty() || e.stage_modeled_ms.is_empty() {
            "–".to_string()
        } else {
            e.stage_modeled_ms
                .iter()
                .map(|(label, ms)| format!("{label} {ms:.2}"))
                .collect::<Vec<_>>()
                .join("; ")
        };
        let latency = if e.qps > 0.0 {
            format!("{:.1}/{:.1}", e.p50_ms, e.p99_ms)
        } else {
            "–".to_string()
        };
        let qps = if e.qps > 0.0 {
            format!("{:.0}", e.qps)
        } else {
            "–".to_string()
        };
        let prefetch = if e.prefetch_speedup > 0.0 {
            format!("{:.2}x", e.prefetch_speedup)
        } else {
            "–".to_string()
        };
        let _ = writeln!(
            md,
            "| `{}` | {} | {:.2} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            e.name,
            e.residency_class,
            e.modeled_ms,
            base_ms,
            delta,
            e.peak_resident_blocks,
            base_peak,
            peaks,
            rows_s,
            latency,
            qps,
            speedup,
            prefetch,
            stages
        );
    }
    let _ = writeln!(
        md,
        "\nGate: modeled cost and peak residency must stay within {REGRESS_FACTOR}× of \
         `results/BENCH_9.baseline.json`. Wall clock (rows/s, p50/p99, qps) is informational \
         unless `WF_REGRESS_MIN_WALL_SPEEDUP` / `WF_REGRESS_MIN_GROUPBY_WALL_SPEEDUP` arm the \
         multi-core wall gates; the `prefetch` column's read-ahead speedup is latency-driven \
         and gated at ≥ 1.3× in the harness itself."
    );
    md
}

/// Run the regression suite: write `results/BENCH_9.json`, print the table
/// and the fast-path headline numbers, compare against the checked-in
/// baseline. Returns `false` when a >2× modeled-cost or peak-residency
/// regression was found.
pub fn run_regress() -> bool {
    let entries = run_workloads();

    let mut t = ReportTable::new(
        "BENCH_9: regression workloads (modeled ms | wall ms | rows/s | comparisons | peak resident)",
        &[
            "workload",
            "modeled ms",
            "wall ms",
            "rows/s",
            "comparisons",
            "io",
            "key encodes",
            "peak res blk",
            "worker peaks",
            "class",
            "par speedup",
            "p50/p99 ms",
            "qps",
        ],
    );
    for e in &entries {
        t.row(vec![
            e.name.clone(),
            format!("{:.2}", e.modeled_ms),
            format!("{:.2}", e.wall_ms),
            if e.rows_per_sec > 0.0 {
                format!("{:.0}k", e.rows_per_sec / 1000.0)
            } else {
                "-".to_string()
            },
            format!("{}", e.comparisons),
            format!("{}", e.io_blocks),
            format!("{}", e.key_encodes),
            format!("{}", e.peak_resident_blocks),
            if e.worker_peak_blocks.is_empty() {
                "-".to_string()
            } else {
                format!(
                    "[{}]",
                    e.worker_peak_blocks
                        .iter()
                        .map(|b| b.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )
            },
            e.residency_class.clone(),
            if e.par_speedup > 0.0 {
                format!("{:.2}x", e.par_speedup)
            } else {
                "-".to_string()
            },
            if e.qps > 0.0 {
                format!("{:.1}/{:.1}", e.p50_ms, e.p99_ms)
            } else {
                "-".to_string()
            },
            if e.qps > 0.0 {
                format!("{:.0}", e.qps)
            } else {
                "-".to_string()
            },
        ]);
    }
    t.emit("BENCH_9_table");

    // Headline: byte-key / radix wall speedup on the sort-dominated
    // workloads, and the vectorized-filter wall speedup.
    let wall = |name: &str| {
        entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.wall_ms)
            .unwrap_or(f64::NAN)
    };
    println!(
        "fig3 radix sort wall speedup over comparator: {:.2}x",
        wall("fig3_comparator") / wall("fig3_radix")
    );
    for (cmp_name, norm_name) in [
        ("fs_sort_m25_comparator", "fs_sort_m25_normkeys"),
        ("fs_sort_m500_comparator", "fs_sort_m500_normkeys"),
        ("hs_sort_m25_comparator", "hs_sort_m25_normkeys"),
        ("hs_sort_m500_comparator", "hs_sort_m500_normkeys"),
    ] {
        println!(
            "normalized-key wall speedup {}: {:.2}x",
            norm_name,
            wall(cmp_name) / wall(norm_name)
        );
    }
    println!(
        "vectorized filter wall speedup over row path: {:.2}x",
        wall("filter_rowwise") / wall("filter_vectorized")
    );
    let find = |name: &str| entries.iter().find(|e| e.name == name);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if let Some(par) = find("par_chain_w4") {
        println!(
            "parallel chain ({PAR_WORKERS} workers): {:.2}x modeled plan speedup, {:.2}x wall \
             over its serial execution (host has {cores} core(s); wall speedup requires \
             cores > 1)",
            par.par_est_speedup, par.par_speedup
        );
    }
    if let Some(gb) = find("groupby_par") {
        println!(
            "parallel GROUP BY ({PAR_WORKERS} workers): {:.2}x wall over the serial operator",
            gb.par_speedup
        );
    }
    if let (Some(file), Some(cold), Some(pre)) = (
        find("spill_file"),
        find("spill_objectstore"),
        find("spill_objectstore_prefetch"),
    ) {
        println!(
            "spill backends (identical counters): file {:.1} ms, object store {:.1} ms cold, \
             {:.1} ms with read-ahead — prefetch speedup {:.2}x (gated >= 1.3x)",
            file.wall_ms, cold.wall_ms, pre.wall_ms, pre.prefetch_speedup
        );
    }
    for &level in &CONCURRENT_LEVELS {
        if let Some(e) = find(&format!("concurrent_inflight_{level}")) {
            println!(
                "served concurrency ({level:>2} in flight): p50 {:>6.1} ms, p99 {:>6.1} ms, \
                 {:>5.0} statements/s",
                e.p50_ms, e.p99_ms, e.qps
            );
        }
    }
    if let (Some(on), Some(off)) = (
        find("chain_shared_wpk_reuse"),
        find("chain_shared_wpk_noreuse"),
    ) {
        println!(
            "boundary reuse: {} → {} comparisons ({:.1}% fewer)",
            off.comparisons,
            on.comparisons,
            100.0 * (off.comparisons.saturating_sub(on.comparisons)) as f64
                / off.comparisons.max(1) as f64
        );
    }

    let json = to_json(&entries);
    std::fs::create_dir_all("results").ok();
    if let Err(e) = std::fs::write("results/BENCH_9.json", &json) {
        eprintln!("(could not write results/BENCH_9.json: {e})");
    }
    // Markdown comparison for the CI step summary ($GITHUB_STEP_SUMMARY):
    // current vs baseline modeled cost + peak residency + residency class,
    // so bench drift is readable on the PR without downloading artifacts.
    let baseline_for_md = std::fs::read_to_string("results/BENCH_9.baseline.json")
        .map(|raw| parse_baseline(&raw))
        .unwrap_or_default();
    if let Err(e) = std::fs::write(
        "results/BENCH_9_summary.md",
        step_summary_markdown(&entries, &baseline_for_md),
    ) {
        eprintln!("(could not write results/BENCH_9_summary.md: {e})");
    }

    // Gate against the checked-in baseline. A missing baseline is fatal in
    // CI (the gate must never silently disarm there) and a friendly skip
    // locally.
    let Ok(baseline_raw) = std::fs::read_to_string("results/BENCH_9.baseline.json") else {
        if std::env::var_os("CI").is_some() {
            println!("\nresults/BENCH_9.baseline.json missing in CI — failing the gate");
            return false;
        }
        println!("\n(no results/BENCH_9.baseline.json — baseline gate skipped)");
        return true;
    };
    let baseline = parse_baseline(&baseline_raw);
    let mut ok = true;
    for (name, base_ms, base_peak) in baseline {
        let Some(e) = entries.iter().find(|e| e.name == name) else {
            // A vanished workload silently disarms its gate — fail so the
            // baseline must be regenerated in the same change.
            println!(
                "REGRESSION {name}: baseline entry no longer measured \
                 (renamed/removed? regenerate results/BENCH_9.baseline.json)"
            );
            ok = false;
            continue;
        };
        if base_ms > 0.0 && e.modeled_ms > REGRESS_FACTOR * base_ms {
            println!(
                "REGRESSION {}: modeled {:.2} ms vs baseline {:.2} ms (> {REGRESS_FACTOR}x)",
                name, e.modeled_ms, base_ms
            );
            ok = false;
        }
        if base_peak > 0 && e.peak_resident_blocks as f64 > REGRESS_FACTOR * base_peak as f64 {
            println!(
                "REGRESSION {}: peak resident {} blocks vs baseline {} (> {REGRESS_FACTOR}x)",
                name, e.peak_resident_blocks, base_peak
            );
            ok = false;
        }
    }
    // Wall-clock gate, armed only when the caller attests to spare cores
    // (the CI multi-core axis sets it after checking `nproc`). Never armed
    // by default: wall speedup on a single-core host is ≈ 1.0 by
    // construction.
    if let Some(min) = std::env::var("WF_REGRESS_MIN_WALL_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        match find("par_chain_w4") {
            Some(par) if par.par_speedup >= min => {
                println!(
                    "wall-speedup gate: OK ({:.2}x >= {min:.2}x on {cores} core(s))",
                    par.par_speedup
                );
            }
            Some(par) => {
                println!(
                    "REGRESSION par_chain_w4: wall speedup {:.2}x below the required \
                     {min:.2}x ({cores} core(s))",
                    par.par_speedup
                );
                ok = false;
            }
            None => {
                println!("REGRESSION: wall-speedup gate armed but par_chain_w4 not measured");
                ok = false;
            }
        }
    }
    // Same idea for the parallel GROUP BY scatter/merge path, with its own
    // threshold: merge overhead caps its speedup below the chain's.
    if let Some(min) = std::env::var("WF_REGRESS_MIN_GROUPBY_WALL_SPEEDUP")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
    {
        match find("groupby_par") {
            Some(gb) if gb.par_speedup >= min => {
                println!(
                    "groupby wall-speedup gate: OK ({:.2}x >= {min:.2}x on {cores} core(s))",
                    gb.par_speedup
                );
            }
            Some(gb) => {
                println!(
                    "REGRESSION groupby_par: wall speedup {:.2}x below the required \
                     {min:.2}x ({cores} core(s))",
                    gb.par_speedup
                );
                ok = false;
            }
            None => {
                println!("REGRESSION: groupby wall gate armed but groupby_par not measured");
                ok = false;
            }
        }
    }
    if ok {
        println!(
            "\nbaseline gate: OK (no workload exceeded {REGRESS_FACTOR}x \
             modeled cost or peak residency)"
        );
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, ms: f64, peak: u64, class: &str) -> RegressEntry {
        RegressEntry {
            name: name.into(),
            modeled_ms: ms,
            wall_ms: 1.0,
            rows_per_sec: 8_000.0,
            comparisons: 7,
            io_blocks: 2,
            key_encodes: 5,
            peak_resident_blocks: peak,
            residency_class: class.into(),
            par_speedup: 0.0,
            par_est_speedup: 0.0,
            prefetch_speedup: 0.0,
            p50_ms: 0.0,
            p99_ms: 0.0,
            qps: 0.0,
            stage_modeled_ms: vec![],
            worker_peak_blocks: vec![],
            metrics: None,
        }
    }

    #[test]
    fn baseline_roundtrip() {
        let entries = vec![entry("w1", 1.25, 17, "ring"), entry("w2", 0.5, 0, "-")];
        let json = to_json(&entries);
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "w1");
        assert!((parsed[0].1 - 1.25).abs() < 1e-9);
        assert_eq!(parsed[0].2, 17);
        assert!((parsed[1].1 - 0.5).abs() < 1e-9);
        assert_eq!(parsed[1].2, 0);
    }

    #[test]
    fn step_summary_compares_against_baseline() {
        let entries = vec![entry("w1", 2.0, 8, "one-pass"), entry("w3", 1.0, 4, "ring")];
        let baseline = vec![("w1".to_string(), 1.0, 8u64)];
        let md = step_summary_markdown(&entries, &baseline);
        assert!(
            md.contains(
                "| `w1` | one-pass | 2.00 | 1.00 | +100.0% | 8 | 8 | – | 8k | – | – | – | – | – |"
            ),
            "{md}"
        );
        // A workload with no baseline row reads "new", never a bogus delta.
        assert!(
            md.contains(
                "| `w3` | ring | 1.00 | new | n/a | 4 | new | – | 8k | – | – | – | – | – |"
            ),
            "{md}"
        );
        // A parallel workload shows wall speedup, per-worker residency
        // peaks and the per-stage modeled attribution.
        let mut par = entry("w4", 1.0, 4, "ring");
        par.par_speedup = 2.5;
        par.worker_peak_blocks = vec![3, 5];
        par.stage_modeled_ms = vec![
            ("scan+filter".to_string(), 0.5),
            ("PAR→r".to_string(), 1.25),
        ];
        let md2 = step_summary_markdown(&[par], &[]);
        assert!(
            md2.contains("| [3, 5] | 8k | – | – | 2.50x | – | scan+filter 0.50; PAR→r 1.25 |"),
            "{md2}"
        );
    }

    #[test]
    fn exec_metrics_embed_survives_baseline_parsing() {
        // Entries with a nested `"exec"` object must not confuse the
        // baseline extractor (the pre-parser splitter would have).
        let mut e = entry("w1", 1.25, 17, "ring");
        e.metrics = Some(wf_core::ExecMetrics {
            modeled_ms: 1.25,
            wall_ms: 0.8,
            blocks_read: 1,
            blocks_written: 1,
            comparisons: 7,
            hashes: 0,
            rows_moved: 10,
            key_encodes: 5,
            peak_resident_blocks: 17,
            peak_resident_rows: 40,
            pool_spill_blocks_written: 0,
            pool_spill_blocks_read: 0,
            worker_peak_blocks: vec![2, 3],
        });
        let json = to_json(&[e, entry("w2", 0.5, 0, "-")]);
        let doc = wf_common::Json::parse(&json).expect("BENCH JSON parses");
        let entries = doc.get("entries").and_then(|v| v.as_array()).unwrap();
        let exec = entries[0].get("exec").expect("embedded metrics");
        let back = wf_core::ExecMetrics::from_json(exec).expect("metrics round-trip");
        assert_eq!(back.worker_peak_blocks, vec![2, 3]);
        assert_eq!(back.comparisons, 7);
        assert!(
            entries[1].get("exec").is_none(),
            "microbench entries stay flat"
        );
        let parsed = parse_baseline(&json);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], ("w1".to_string(), 1.25, 17));
    }
}
