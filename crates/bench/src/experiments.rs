//! Experiment drivers — one per figure/table of the paper's §6.

use crate::queries;
use crate::report::{ms, ReportTable};
use crate::{paper_mb_to_blocks, FIG3_MEMORIES_MB, QUERY_MEMORIES_MB};
use std::time::Instant;
use wf_common::{OrdElem, SortSpec, Value};
use wf_core::cost::{hs_bucket_count, TableStats};
use wf_core::plan::{finalize_chain, PlanContext, PlanStep, ReorderOp};
use wf_core::planner::{optimize, plan_bfo, plan_cso, plan_orcl, plan_psql, BfoOptions, Scheme};
use wf_core::props::SegProps;
use wf_core::query::WindowQuery;
use wf_core::runtime::{execute_plan, ExecEnv};
use wf_core::spec::WindowSpec;
use wf_datagen::{random_specs, WsColumn, WsConfig};
use wf_exec::parallel::parallel_partitioned;
use wf_exec::{evaluate_window, full_sort, SegmentedRows};
use wf_storage::Table;

/// Harness configuration (row count scales every experiment together).
#[derive(Debug, Clone)]
pub struct Harness {
    pub rows: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Harness { rows: 200_000 }
    }
}

impl Harness {
    pub fn ws_config(&self) -> WsConfig {
        // Keep the "medium" Q1 regime: item buckets well below the
        // smallest M.
        WsConfig {
            rows: self.rows,
            d_item: (self.rows as u64 / 20).max(64),
            d_bill: (self.rows as u64 / 10).max(64),
            ..WsConfig::default()
        }
    }
}

/// Execute a single hand-built reorder+eval step and report
/// (modeled ms, io blocks, wall ms).
fn run_single_op(
    table: &Table,
    input_props: &SegProps,
    spec: &WindowSpec,
    op: ReorderOp,
    stats: &TableStats,
    m_blocks: u64,
) -> (f64, u64, f64) {
    let env = ExecEnv::with_memory_blocks(m_blocks);
    let ctx = PlanContext::new(stats, m_blocks);
    let plan = finalize_chain(
        "micro",
        std::slice::from_ref(spec),
        input_props,
        1,
        vec![PlanStep { wf: 0, reorder: op }],
        &ctx,
    );
    let report = execute_plan(&plan, table, &env).expect("micro-benchmark step");
    (
        report.modeled_ms,
        report.work.io_blocks(),
        report.wall.as_secs_f64() * 1000.0,
    )
}

fn fs_op(spec: &WindowSpec) -> ReorderOp {
    ReorderOp::Fs {
        key: wf_core::plan::default_fs_key(spec),
    }
}

fn hs_op(spec: &WindowSpec, stats: &TableStats, mem_blocks: u64) -> ReorderOp {
    ReorderOp::Hs {
        whk: spec.wpk().clone(),
        key: wf_core::plan::default_fs_key(spec),
        n_buckets: hs_bucket_count(stats, spec.wpk(), mem_blocks),
        mfv: vec![],
    }
}

/// Figure 3 (a)–(c): FS vs HS across the memory axis for Q1/Q2/Q3.
pub fn run_fig3(h: &Harness) {
    let cfg = h.ws_config();
    let table = cfg.generate();
    let stats = TableStats::from_table(&table);
    let b = table.block_count();
    println!(
        "web_sales: {} rows, {} blocks ({} MB-equivalent of the paper's 14.3 GB)\n",
        table.row_count(),
        b,
        b * 8 / 1024
    );
    for (fig, spec) in [
        ("fig3a_q1", queries::q1()),
        ("fig3b_q2", queries::q2()),
        ("fig3c_q3", queries::q3()),
    ] {
        let mut t = ReportTable::new(
            &format!("{fig}: plan execution, FS vs HS (modeled ms | io blocks)"),
            &[
                "M(paper MB)",
                "M(blocks)",
                "FS ms",
                "HS ms",
                "FS io",
                "HS io",
                "FS wall",
                "HS wall",
            ],
        );
        for &m_mb in &FIG3_MEMORIES_MB {
            let m = paper_mb_to_blocks(m_mb, b);
            let (fs_ms, fs_io, fs_wall) = run_single_op(
                &table,
                &SegProps::unordered(),
                &spec,
                fs_op(&spec),
                &stats,
                m,
            );
            let (hs_ms, hs_io, hs_wall) = run_single_op(
                &table,
                &SegProps::unordered(),
                &spec,
                hs_op(&spec, &stats, m),
                &stats,
                m,
            );
            t.row(vec![
                format!("{m_mb}"),
                format!("{m}"),
                format!("{fs_ms:.1}"),
                format!("{hs_ms:.1}"),
                format!("{fs_io}"),
                format!("{hs_io}"),
                ms(fs_wall),
                ms(hs_wall),
            ]);
        }
        t.emit(fig);
    }
}

/// Figure 4 (a)/(b): SS vs FS vs HS on the sorted/grouped variants.
pub fn run_fig4(h: &Harness) {
    let cfg = h.ws_config();
    let spec = queries::q4_q5();
    let qty = WsColumn::Quantity.attr();
    let item = WsColumn::Item.attr();
    let variants: [(&str, Table, SegProps); 2] = [
        (
            "fig4a_q4_sorted",
            cfg.generate_sorted_on(WsColumn::Quantity),
            SegProps::sorted(SortSpec::new(vec![OrdElem::asc(qty)])),
        ),
        (
            "fig4b_q5_grouped",
            cfg.generate_grouped_on(WsColumn::Quantity),
            SegProps::new(
                wf_common::AttrSet::from_iter([qty]),
                SortSpec::empty(),
                true,
            ),
        ),
    ];
    for (fig, table, props) in variants {
        let stats = TableStats::from_table(&table);
        let b = table.block_count();
        let split = props.alpha_split(&spec);
        let ss = ReorderOp::Ss {
            alpha: split.alpha.clone(),
            beta: split.beta.clone(),
        };
        let mut t = ReportTable::new(
            &format!("{fig}: FS vs HS vs SS (modeled ms)"),
            &[
                "M(paper MB)",
                "M(blocks)",
                "FS ms",
                "HS ms",
                "SS ms",
                "SS io",
            ],
        );
        for &m_mb in &FIG3_MEMORIES_MB {
            let m = paper_mb_to_blocks(m_mb, b);
            let (fs_ms, _, _) = run_single_op(&table, &props, &spec, fs_op(&spec), &stats, m);
            let (hs_ms, _, _) =
                run_single_op(&table, &props, &spec, hs_op(&spec, &stats, m), &stats, m);
            let (ss_ms, ss_io, _) = run_single_op(&table, &props, &spec, ss.clone(), &stats, m);
            t.row(vec![
                format!("{m_mb}"),
                format!("{m}"),
                format!("{fs_ms:.1}"),
                format!("{hs_ms:.1}"),
                format!("{ss_ms:.1}"),
                format!("{ss_io}"),
            ]);
        }
        let _ = item;
        t.emit(fig);
    }
}

/// Schemes compared for one of Q6–Q9: plans (Tables 4/6/8/10) and
/// execution times (Figs. 5–8).
pub fn run_query_experiment(name: &str, query: &WindowQuery, h: &Harness, with_ablations: bool) {
    let cfg = h.ws_config();
    let table = cfg.generate();
    let stats = TableStats::from_table(&table);
    let b = table.block_count();

    let mut plans = ReportTable::new(
        &format!("{name}: execution plans per scheme (paper Tables 4/6/8/10)"),
        &["M(paper MB)", "scheme", "plan", "est ms", "repairs"],
    );
    let mut times = ReportTable::new(
        &format!("{name}: plan execution times (paper Figs. 5–8)"),
        &["M(paper MB)", "scheme", "modeled ms", "io blocks", "wall"],
    );

    let mut schemes: Vec<Scheme> = vec![Scheme::Bfo, Scheme::Cso];
    if with_ablations {
        schemes.push(Scheme::CsoNoHs);
        schemes.push(Scheme::CsoNoSs);
    }
    schemes.push(Scheme::Orcl);
    schemes.push(Scheme::Psql);

    for &m_mb in &QUERY_MEMORIES_MB {
        let m = paper_mb_to_blocks(m_mb, b);
        for &scheme in &schemes {
            let env = ExecEnv::with_memory_blocks(m);
            let plan = optimize(query, &stats, scheme, &env).expect("planning");
            plans.row(vec![
                format!("{m_mb}"),
                scheme.name().into(),
                plan.chain_string(),
                format!("{:.0}", plan.est_cost.ms(&env.weights())),
                format!("{}", plan.repairs),
            ]);
            let report = execute_plan(&plan, &table, &env).expect("execution");
            times.row(vec![
                format!("{m_mb}"),
                scheme.name().into(),
                format!("{:.1}", report.modeled_ms),
                format!("{}", report.work.io_blocks()),
                ms(report.wall.as_secs_f64() * 1000.0),
            ]);
        }
    }
    plans.emit(&format!("{name}_plans"));
    times.emit(&format!("{name}_times"));
}

/// Table 11: optimizer overhead vs number of window functions.
pub fn run_table11(h: &Harness) {
    let cfg = h.ws_config();
    let stats = TableStats::synthetic(
        cfg.rows as u64,
        (cfg.rows * 214) as u64,
        vec![
            (WsColumn::SoldDate.attr(), cfg.d_date),
            (WsColumn::SoldTime.attr(), cfg.d_time),
            (WsColumn::ShipDate.attr(), cfg.d_ship),
            (WsColumn::Item.attr(), cfg.d_item),
            (WsColumn::Bill.attr(), cfg.d_bill),
        ],
    );
    let pool = queries::table11_pool();
    let mut t = ReportTable::new(
        "table11: optimization overhead (ms) vs #window functions",
        &["#wfs", "BFO", "CSO", "ORCL", "PSQL"],
    );
    for n in 6..=10 {
        let specs = random_specs(n, &pool, 1244 + n as u64);
        let query = WindowQuery::new(cfg.schema(), specs);
        let ctx = PlanContext::new(&stats, 37);
        let time_it = |f: &dyn Fn()| -> f64 {
            // Warm once, then best of 3.
            f();
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    f();
                    t0.elapsed().as_secs_f64() * 1000.0
                })
                .fold(f64::INFINITY, f64::min)
        };
        let bfo = time_it(&|| {
            let _ = plan_bfo(&query, &ctx, &BfoOptions::default());
        });
        let cso = time_it(&|| {
            let _ = plan_cso(&query, &ctx);
        });
        let orcl = time_it(&|| {
            let _ = plan_orcl(&query, &ctx);
        });
        let psql = time_it(&|| {
            let _ = plan_psql(&query, &ctx);
        });
        t.row(vec![
            format!("{n}"),
            format!("{bfo:.2}"),
            format!("{cso:.3}"),
            format!("{orcl:.3}"),
            format!("{psql:.3}"),
        ]);
    }
    t.emit("table11_overheads");
}

/// Ablation: the MFV optimization of HS on a skewed table (§3.2).
pub fn run_ablate_hs(h: &Harness) {
    let cfg = h.ws_config();
    let mut table = cfg.generate();
    // Skew: 30% of rows share one hot item value, whose partition alone
    // exceeds any small M.
    let item = WsColumn::Item.attr();
    let schema = table.schema().clone();
    let rows: Vec<wf_common::Row> = table
        .rows()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let mut vals = r.values().to_vec();
            if i % 10 < 3 {
                vals[item.index()] = Value::Int(0);
            }
            wf_common::Row::new(vals)
        })
        .collect();
    table = Table::from_rows(schema, rows).unwrap();
    let stats = TableStats::from_table(&table);
    let spec = queries::q1();
    let b = table.block_count();

    let mut t = ReportTable::new(
        "ablate_hs: HS with vs without the MFV optimization (skewed item)",
        &["M(paper MB)", "HS ms", "HS+MFV ms", "HS io", "HS+MFV io"],
    );
    for &m_mb in &[10.0, 25.0, 50.0] {
        let m = paper_mb_to_blocks(m_mb, b);
        let plain = hs_op(&spec, &stats, m);
        let (p_ms, p_io, _) =
            run_single_op(&table, &SegProps::unordered(), &spec, plain, &stats, m);
        // MFV path: executed directly (the planner API stays cost-based).
        let env = ExecEnv::with_memory_blocks(m);
        let opts = wf_exec::HsOptions {
            n_buckets: hs_bucket_count(&stats, spec.wpk(), m),
            mfv_values: vec![vec![Value::Int(0)]],
            stable_emission: false,
        };
        let t0 = Instant::now();
        let key = wf_core::plan::default_fs_key(&spec);
        let sorted = wf_exec::hashed_sort(
            SegmentedRows::single_segment(table.rows().to_vec()),
            spec.wpk(),
            &key,
            &opts,
            env.op_env(),
        )
        .unwrap();
        let _ = evaluate_window(
            sorted,
            spec.wpk(),
            spec.wok(),
            &spec.func,
            None,
            env.op_env(),
        )
        .unwrap();
        let _wall = t0.elapsed();
        let work = env.tracker().snapshot();
        let m_ms = env.weights().modeled_ms(&work);
        t.row(vec![
            format!("{m_mb}"),
            format!("{p_ms:.1}"),
            format!("{m_ms:.1}"),
            format!("{p_io}"),
            format!("{}", work.io_blocks()),
        ]);
    }
    t.emit("ablate_hs_mfv");
}

/// Ablation: SS sensitivity to unit count (DESIGN.md's design-choice
/// callout — smaller units, cheaper SS).
pub fn run_ablate_ss(h: &Harness) {
    let mut t = ReportTable::new(
        "ablate_ss: SS vs FS as the segment count of the input varies",
        &["segments (D(quantity))", "SS ms", "FS ms", "SS/FS"],
    );
    for d_qty in [10u64, 100, 1_000, 10_000] {
        let cfg = WsConfig {
            d_quantity: d_qty,
            ..h.ws_config()
        };
        let table = cfg.generate_sorted_on(WsColumn::Quantity);
        let stats = TableStats::from_table(&table);
        let b = table.block_count();
        let m = paper_mb_to_blocks(50.0, b);
        let spec = queries::q4_q5();
        let props = SegProps::sorted(SortSpec::new(vec![OrdElem::asc(WsColumn::Quantity.attr())]));
        let split = props.alpha_split(&spec);
        let ss = ReorderOp::Ss {
            alpha: split.alpha,
            beta: split.beta,
        };
        let (ss_ms, _, _) = run_single_op(&table, &props, &spec, ss, &stats, m);
        let (fs_ms, _, _) = run_single_op(&table, &props, &spec, fs_op(&spec), &stats, m);
        t.row(vec![
            format!("{d_qty}"),
            format!("{ss_ms:.1}"),
            format!("{fs_ms:.1}"),
            format!("{:.3}", ss_ms / fs_ms),
        ]);
    }
    t.emit("ablate_ss_units");
}

/// §3.5: parallel evaluation speedup.
pub fn run_parallel(h: &Harness) {
    let cfg = h.ws_config();
    let table = cfg.generate();
    let spec = queries::q1();
    let key = wf_core::plan::default_fs_key(&spec);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut t = ReportTable::new(
        &format!(
            "parallel: single window function, hash-partitioned workers (§3.5) — host has \
             {cores} core(s); speedup requires cores > 1"
        ),
        &["workers", "wall ms", "speedup"],
    );
    let mut base = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let env = ExecEnv::with_memory_blocks(64);
        let t0 = Instant::now();
        let out = parallel_partitioned(
            SegmentedRows::single_segment(table.rows().to_vec()),
            spec.wpk(),
            workers,
            env.op_env(),
            |_, part, worker_env| {
                let sorted = full_sort(part, &key, worker_env)?;
                evaluate_window(sorted, spec.wpk(), spec.wok(), &spec.func, None, worker_env)
            },
        )
        .unwrap();
        assert_eq!(out.len(), table.row_count());
        let wall = t0.elapsed().as_secs_f64() * 1000.0;
        if workers == 1 {
            base = wall;
        }
        t.row(vec![
            format!("{workers}"),
            format!("{wall:.1}"),
            format!("{:.2}x", base / wall),
        ]);
    }
    t.emit("parallel_speedup");
}

/// §5: integrated optimization over GROUP BY variants — the tightly
/// integrated approach must never lose to either fixed upstream plan.
/// The GROUP BY setup runs through the parallel scatter/merge path
/// (4 workers), which emits the same rows in the same order as the
/// serial operators.
pub fn run_integrated(h: &Harness) {
    use wf_core::integrated::{optimize_integrated, InputVariant};
    use wf_exec::{group_by_hash_par, group_by_sort_par, GroupAgg};

    const GB_WORKERS: usize = 4;
    let cfg = h.ws_config();
    let base = cfg.generate();
    let item = WsColumn::Item.attr();
    let qty = WsColumn::Quantity.attr();
    let keys = [item];
    let aggs = [GroupAgg::CountStar, GroupAgg::Sum(qty)];

    let mut t = ReportTable::new(
        "integrated (§5): window chain over hash vs sort GROUP BY variants",
        &[
            "M(paper MB)",
            "hash total ms",
            "sort total ms",
            "chosen",
            "chain",
        ],
    );
    for &m_mb in &QUERY_MEMORIES_MB {
        let m = paper_mb_to_blocks(m_mb, base.block_count());

        let env_hash = ExecEnv::with_memory_blocks(m);
        let by_hash =
            group_by_hash_par(&base, &keys, &aggs, GB_WORKERS, env_hash.op_env()).unwrap();
        let hash_cost = env_hash
            .weights()
            .modeled_ms(&env_hash.tracker().snapshot());
        let env_sort = ExecEnv::with_memory_blocks(m);
        let _by_sort =
            group_by_sort_par(&base, &keys, &aggs, GB_WORKERS, env_sort.op_env()).unwrap();
        let sort_cost = env_sort
            .weights()
            .modeled_ms(&env_sort.tracker().snapshot());

        let schema = by_hash.schema().clone();
        let key_attr = schema.resolve("ws_item_sk").unwrap();
        let specs = vec![
            WindowSpec::rank(
                "r1",
                vec![key_attr],
                SortSpec::new(vec![OrdElem::desc(
                    schema.resolve("sum_ws_quantity").unwrap(),
                )]),
            ),
            WindowSpec::rank(
                "r2",
                vec![key_attr],
                SortSpec::new(vec![OrdElem::asc(schema.resolve("count").unwrap())]),
            ),
        ];
        let query = WindowQuery::new(schema, specs);
        let variants = vec![
            InputVariant {
                label: "hash".into(),
                props: SegProps::new(
                    wf_common::AttrSet::from_iter([key_attr]),
                    SortSpec::empty(),
                    true,
                ),
                segments: by_hash.row_count() as u64,
                setup_cost_ms: hash_cost,
            },
            InputVariant {
                label: "sort".into(),
                props: SegProps::sorted(SortSpec::new(vec![OrdElem::asc(key_attr)])),
                segments: 1,
                setup_cost_ms: sort_cost,
            },
        ];
        let stats = TableStats::from_table(&by_hash);
        let env = ExecEnv::with_memory_blocks(m);
        let best = optimize_integrated(&query, &variants, &stats, Scheme::Cso, &env).unwrap();
        // Per-variant totals for the table.
        let mut totals = Vec::new();
        for v in &variants {
            let one =
                optimize_integrated(&query, std::slice::from_ref(v), &stats, Scheme::Cso, &env)
                    .unwrap();
            totals.push(one.total_ms);
        }
        t.row(vec![
            format!("{m_mb}"),
            format!("{:.1}", totals[0]),
            format!("{:.1}", totals[1]),
            variants[best.variant].label.clone(),
            best.plan.chain_string(),
        ]);
    }
    t.emit("integrated_group_by");
}

/// All multi-function query experiments.
pub fn run_queries(h: &Harness) {
    let cfg = h.ws_config();
    run_query_experiment("q6", &queries::q6(&cfg), h, true);
    run_query_experiment("q7", &queries::q7(&cfg), h, false);
    run_query_experiment("q8", &queries::q8(&cfg), h, false);
    run_query_experiment("q9", &queries::q9(&cfg), h, false);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full pipeline at toy scale: every experiment entry point runs.
    #[test]
    fn smoke_all_experiments_tiny() {
        let h = Harness { rows: 3_000 };
        run_fig3(&h);
        run_fig4(&h);
        run_query_experiment("q6_smoke", &queries::q6(&h.ws_config()), &h, true);
        run_ablate_ss(&Harness { rows: 2_000 });
        run_ablate_hs(&Harness { rows: 2_000 });
        run_parallel(&Harness { rows: 2_000 });
    }
}
