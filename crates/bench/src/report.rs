//! Table printing and CSV output for the repro harness.

use std::fs;
use std::path::PathBuf;

/// A simple column-aligned table that also serializes to CSV.
pub struct ReportTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ReportTable {
    pub fn new(title: &str, header: &[&str]) -> Self {
        ReportTable {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("## {}\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout and save under `results/<slug>.csv`.
    pub fn emit(&self, slug: &str) {
        println!("{}", self.render());
        if let Err(e) = self.write_csv(slug) {
            eprintln!("(could not write results/{slug}.csv: {e})");
        }
    }

    fn write_csv(&self, slug: &str) -> std::io::Result<()> {
        let dir = PathBuf::from("results");
        fs::create_dir_all(&dir)?;
        let mut csv = String::new();
        csv.push_str(&self.header.join(","));
        csv.push('\n');
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            csv.push_str(&escaped.join(","));
            csv.push('\n');
        }
        fs::write(dir.join(format!("{slug}.csv")), csv)
    }
}

/// Format milliseconds compactly.
pub fn ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.1}s", v / 1000.0)
    } else {
        format!("{v:.1}ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = ReportTable::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(12.34), "12.3ms");
        assert_eq!(ms(2500.0), "2.5s");
    }
}
