//! `repro` — regenerate every figure and table of "Optimization of Analytic
//! Window Functions" (VLDB 2012).
//!
//! ```sh
//! cargo run --release -p wf-bench --bin repro -- all
//! cargo run --release -p wf-bench --bin repro -- fig3 --rows 400000
//! ```
//!
//! Results print as aligned tables and are written as CSV under `results/`.

use wf_bench::experiments::{
    run_ablate_hs, run_ablate_ss, run_fig3, run_fig4, run_integrated, run_parallel, run_queries,
    run_query_experiment, run_table11, Harness,
};
use wf_bench::queries;

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment> [--rows N]\n\
         experiments:\n\
           fig3      FS vs HS micro-benchmark (Q1/Q2/Q3, Fig. 3)\n\
           fig4      SS vs FS/HS on sorted/grouped inputs (Q4/Q5, Fig. 4)\n\
           q6|q7|q8|q9  plans + times per scheme (Tables 4/6/8/10, Figs. 5-8)\n\
           queries   q6..q9 in one go\n\
           table11   optimizer overheads (Table 11)\n\
           ablate-hs HS MFV optimization ablation\n\
           ablate-ss SS unit-count ablation\n\
           parallel  §3.5 parallel speedup\n\
           integrated  §5 GROUP-BY-variant integration\n\
           explain [q6|q7|q8|q9|par]  print the CSO plan (default par, a\n\
                     4-worker parallel chain); with --analyze, execute it\n\
                     and annotate each step with measured wall vs modeled\n\
                     ms, rows, segments, comparisons, spill bytes and\n\
                     residency class; with --trace PATH, also write the\n\
                     execution timeline as Chrome trace-event JSON (load\n\
                     in chrome://tracing or Perfetto) plus PATH.folded\n\
                     flamegraph stacks, self-validated (exit 1 on an\n\
                     invalid trace)\n\
           regress   fixed workloads → results/BENCH_9.json; exits 1 on a\n\
                     >2x modeled-cost or peak-residency regression vs\n\
                     BENCH_9.baseline.json (set WF_REGRESS_MIN_WALL_SPEEDUP /\n\
                     WF_REGRESS_MIN_GROUPBY_WALL_SPEEDUP on multi-core hosts\n\
                     to also gate parallel wall speedups)\n\
           serve     line-protocol TCP server over a generated web_sales\n\
                     table (one SQL statement per line; `.stats`,\n\
                     `.shutdown`)\n\
           client \"SQL\"...  send statements to a running server; use\n\
                     `.shutdown` as the last statement to stop it\n\
           all       everything above (except regress, explain and serve)\n\
         options:\n\
           --rows N       table size (default 200000; paper ratio-preserving;\n\
                          serve defaults to 8000)\n\
           --analyze      (explain) execute and print measured-vs-modeled\n\
           --trace PATH   (explain) record spans and write a Chrome trace\n\
           --port N       (serve/client) TCP port, default 7878\n\
           --threads N    (serve) connection-handler threads, default 8"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut rows = 200_000usize;
    let mut rows_set = false;
    let mut cmd: Option<String> = None;
    let mut sub: Option<String> = None;
    let mut analyze = false;
    let mut trace: Option<String> = None;
    let mut port = 7878u16;
    let mut threads = 8usize;
    let mut statements: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rows" => {
                i += 1;
                rows = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                rows_set = true;
            }
            "--analyze" => analyze = true,
            "--trace" => {
                i += 1;
                trace = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--port" => {
                i += 1;
                port = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            c if cmd.is_none() => cmd = Some(c.to_string()),
            c if cmd.as_deref() == Some("explain") && sub.is_none() => sub = Some(c.to_string()),
            c if cmd.as_deref() == Some("client") => statements.push(c.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let h = Harness { rows };
    let cfg = h.ws_config();
    let started = std::time::Instant::now();
    match cmd.as_deref() {
        Some("fig3") => run_fig3(&h),
        Some("fig4") => run_fig4(&h),
        Some("q6") => run_query_experiment("q6", &queries::q6(&cfg), &h, true),
        Some("q7") => run_query_experiment("q7", &queries::q7(&cfg), &h, false),
        Some("q8") => run_query_experiment("q8", &queries::q8(&cfg), &h, false),
        Some("q9") => run_query_experiment("q9", &queries::q9(&cfg), &h, false),
        Some("queries") => run_queries(&h),
        Some("table11") => run_table11(&h),
        Some("ablate-hs") => run_ablate_hs(&h),
        Some("ablate-ss") => run_ablate_ss(&h),
        Some("parallel") => run_parallel(&h),
        Some("integrated") => run_integrated(&h),
        Some("explain") => {
            let which = sub.as_deref().unwrap_or("par");
            if !wf_bench::explain::run_explain(&h, which, analyze, trace.as_deref()) {
                std::process::exit(1);
            }
        }
        Some("regress") => {
            // Row count is pinned inside the module so the checked-in
            // baseline stays comparable across machines and invocations.
            if !wf_bench::regress::run_regress() {
                eprintln!("\n(total harness time: {:.1?})", started.elapsed());
                std::process::exit(1);
            }
        }
        Some("serve") => {
            let opts = wf_bench::server::ServeOptions {
                port,
                rows: if rows_set { rows } else { 8_000 },
                threads,
                ..Default::default()
            };
            if !wf_bench::server::run_serve(&opts) {
                std::process::exit(1);
            }
        }
        Some("client") => {
            if statements.is_empty() {
                usage();
            }
            if !wf_bench::server::run_client(port, &statements) {
                std::process::exit(1);
            }
        }
        Some("all") => {
            run_fig3(&h);
            run_fig4(&h);
            run_queries(&h);
            run_table11(&h);
            run_integrated(&h);
            run_ablate_hs(&h);
            run_ablate_ss(&h);
            run_parallel(&h);
        }
        _ => usage(),
    }
    eprintln!("\n(total harness time: {:.1?})", started.elapsed());
}
