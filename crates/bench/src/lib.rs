//! # wf-bench
//!
//! The benchmark harness that regenerates every figure and table of the
//! paper's evaluation (§6). The `repro` binary drives the experiments;
//! Criterion benches wrap smaller versions for `cargo bench`.
//!
//! Scaling (DESIGN.md §2/§5): the paper runs a 14.3 GB table with unit
//! reorder memories of 10–1000 MB. We keep the *ratio* `B(R)/M` — each
//! paper-MB value maps to a block budget via [`paper_mb_to_blocks`] — and
//! report the calibrated time model over measured I/O-block and comparison
//! counters next to wall time.

pub mod experiments;
pub mod explain;
pub mod microbench;
pub mod queries;
pub mod regress;
pub mod report;
pub mod server;

/// The paper's table size in MB (14.3 GB), the anchor of the `M` mapping.
pub const PAPER_TABLE_MB: f64 = 14_300.0;

/// Map a paper memory size (MB against 14.3 GB) to a block budget against
/// a table of `table_blocks` blocks, preserving `B/M`.
pub fn paper_mb_to_blocks(m_mb: f64, table_blocks: u64) -> u64 {
    ((m_mb / PAPER_TABLE_MB) * table_blocks as f64)
        .round()
        .max(2.0) as u64
}

/// The `M` axis of Fig. 3/4 (paper MB).
pub const FIG3_MEMORIES_MB: [f64; 8] = [10.0, 25.0, 50.0, 75.0, 100.0, 150.0, 500.0, 1000.0];

/// The `M` axis of the multi-function experiments (Figs. 5–8).
pub const QUERY_MEMORIES_MB: [f64; 3] = [50.0, 75.0, 150.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_mapping_preserves_ratio() {
        let blocks = 10_600;
        assert_eq!(paper_mb_to_blocks(10.0, blocks), 7);
        assert_eq!(paper_mb_to_blocks(150.0, blocks), 111);
        assert_eq!(paper_mb_to_blocks(1000.0, blocks), 741);
        // Floor of 2 blocks.
        assert_eq!(paper_mb_to_blocks(0.001, blocks), 2);
    }
}
