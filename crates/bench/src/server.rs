//! `repro serve` — a thin line-protocol TCP front end over the served
//! session API, plus the matching `repro client`.
//!
//! Zero external dependencies: `std::net` sockets, a fixed thread pool of
//! connection handlers, and one SQL statement per line. The server holds a
//! single [`wfopt::Database`] (a generated `web_sales` table) whose
//! admission governor — not the socket layer — bounds how many statements
//! execute at once; extra connections simply park in the FIFO.
//!
//! ## Protocol
//!
//! Requests are lines:
//!
//! * a SQL statement → `ok <rows> <cols> <wall_ms> <queue_ms>`, a
//!   tab-separated header line, the rows (tab-separated), then a lone `.`;
//! * `.stats` → `ok stats`, `key value` lines, then `.`;
//! * `.shutdown` → `ok bye`, then the server drains and exits;
//! * anything that fails → `err <message>` (connection stays usable).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use wf_datagen::WsConfig;
use wfopt::{Database, DatabaseConfig};

/// Knobs for [`run_serve`]; mirrors the `repro serve` flags.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen port (0 picks a free one; the bound port is printed).
    pub port: u16,
    /// Rows in the generated `web_sales` table.
    pub rows: usize,
    /// Connection-handler threads (independent of the admission limit).
    pub threads: usize,
    /// Queries allowed to execute simultaneously.
    pub max_concurrent: usize,
    /// Per-query block budget.
    pub per_query_blocks: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            port: 7878,
            rows: 8_000,
            threads: 8,
            max_concurrent: 4,
            per_query_blocks: 64,
        }
    }
}

fn open_database(opts: &ServeOptions) -> Database {
    let table = WsConfig {
        rows: opts.rows,
        ..WsConfig::default()
    }
    .generate();
    let db = DatabaseConfig::new()
        .memory_blocks(opts.per_query_blocks * opts.max_concurrent as u64)
        .max_concurrent(opts.max_concurrent)
        .per_query_blocks(opts.per_query_blocks)
        .open();
    db.register("web_sales", table)
        .expect("register generated table");
    db
}

fn sanitize(msg: &str) -> String {
    msg.replace(['\n', '\r'], "; ")
}

fn handle_connection(stream: TcpStream, db: &Database, shutdown: &AtomicBool) {
    stream.set_read_timeout(Some(Duration::from_secs(300))).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client went away
            Ok(_) => {}
        }
        let stmt = line.trim();
        if stmt.is_empty() {
            continue;
        }
        let result = match stmt {
            ".shutdown" => {
                // Flag first: the client pokes the accept loop the moment it
                // reads the ack, and that poke must observe the flag.
                shutdown.store(true, Ordering::SeqCst);
                let _ = writeln!(writer, "ok bye");
                let _ = writer.flush();
                return;
            }
            ".stats" => {
                let s = db.admission_stats();
                let sp = db.spill_stats();
                writeln!(writer, "ok stats")
                    .and_then(|_| writeln!(writer, "admitted {}", s.admitted))
                    .and_then(|_| writeln!(writer, "completed {}", s.completed))
                    .and_then(|_| writeln!(writer, "queued {}", s.queued))
                    .and_then(|_| writeln!(writer, "rejected {}", s.rejected))
                    .and_then(|_| writeln!(writer, "timed_out {}", s.timed_out))
                    .and_then(|_| writeln!(writer, "peak_in_flight {}", s.peak_in_flight))
                    .and_then(|_| writeln!(writer, "spill_backend {}", sp.backend))
                    .and_then(|_| writeln!(writer, "spill_put_requests {}", sp.put_requests))
                    .and_then(|_| writeln!(writer, "spill_get_requests {}", sp.get_requests))
                    .and_then(|_| writeln!(writer, "spill_bytes_written {}", sp.bytes_written))
                    .and_then(|_| writeln!(writer, "spill_bytes_read {}", sp.bytes_read))
                    .and_then(|_| writeln!(writer, "prefetch_hits {}", sp.prefetch_hits))
                    .and_then(|_| writeln!(writer, "prefetch_misses {}", sp.prefetch_misses))
                    .and_then(|_| {
                        writeln!(writer, "prefetch_hit_rate {:.3}", sp.prefetch_hit_rate())
                    })
                    .and_then(|_| writeln!(writer, "."))
            }
            sql => match db.session().execute(sql) {
                Ok(outcome) => {
                    let schema = outcome.table.schema();
                    let header: Vec<&str> =
                        schema.fields().iter().map(|f| f.name.as_str()).collect();
                    writeln!(
                        writer,
                        "ok {} {} {:.3} {:.3}",
                        outcome.table.row_count(),
                        schema.len(),
                        outcome.wall.as_secs_f64() * 1e3,
                        outcome.queue_wait.as_secs_f64() * 1e3,
                    )
                    .and_then(|_| writeln!(writer, "{}", header.join("\t")))
                    .and_then(|_| {
                        for row in outcome.table.rows() {
                            let cells: Vec<String> =
                                row.values().iter().map(|v| v.to_string()).collect();
                            writeln!(writer, "{}", cells.join("\t"))?;
                        }
                        writeln!(writer, ".")
                    })
                }
                Err(e) => writeln!(writer, "err {}", sanitize(&e.to_string())),
            },
        };
        if result.is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// Serve until a client sends `.shutdown`. Returns `false` on a bind error.
pub fn run_serve(opts: &ServeOptions) -> bool {
    let listener = match TcpListener::bind(("127.0.0.1", opts.port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("serve: bind 127.0.0.1:{} failed: {e}", opts.port);
            return false;
        }
    };
    let port = listener.local_addr().map(|a| a.port()).unwrap_or(opts.port);
    let db = open_database(opts);
    println!(
        "serving web_sales ({} rows) on 127.0.0.1:{port} \
         ({} handler threads, {} concurrent queries, M={} blocks)",
        opts.rows, opts.threads, opts.max_concurrent, opts.per_query_blocks
    );

    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<_> = (0..opts.threads.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let db = db.clone();
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || loop {
                let conn = rx.lock().expect("handler queue").recv();
                match conn {
                    Ok(stream) => handle_connection(stream, &db, &shutdown),
                    Err(_) => return, // sender dropped: draining
                }
            })
        })
        .collect();

    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) => {
                eprintln!("serve: accept failed: {e}");
                break;
            }
        }
    }
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    let s = db.admission_stats();
    println!(
        "served {} statements ({} queued, {} rejected, peak {} in flight); bye",
        s.completed, s.queued, s.rejected, s.peak_in_flight
    );
    true
}

/// Unblock the accept loop after `.shutdown` flipped the flag: handlers
/// can't break `listener.incoming()` themselves, so the shutdown path pokes
/// the listener with one throwaway connection.
pub(crate) fn poke(port: u16) {
    let _ = TcpStream::connect(("127.0.0.1", port));
}

/// `repro client`: send each statement over one connection, print the
/// responses, return `false` if any statement failed.
pub fn run_client(port: u16, statements: &[String]) -> bool {
    // Retry the connect so CI can launch `serve &` and `client` back to back.
    let mut stream = None;
    for _ in 0..50 {
        match TcpStream::connect(("127.0.0.1", port)) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => thread::sleep(Duration::from_millis(100)),
        }
    }
    let Some(stream) = stream else {
        eprintln!("client: could not connect to 127.0.0.1:{port}");
        return false;
    };
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let mut ok = true;
    for stmt in statements {
        if writeln!(writer, "{stmt}")
            .and_then(|_| writer.flush())
            .is_err()
        {
            eprintln!("client: connection lost");
            return false;
        }
        let mut status = String::new();
        if reader.read_line(&mut status).unwrap_or(0) == 0 {
            eprintln!("client: server closed the connection");
            return stmt.trim() == ".shutdown" && ok;
        }
        let status = status.trim_end();
        println!("{status}");
        if status.starts_with("err") {
            ok = false;
            continue;
        }
        if status == "ok bye" {
            // Shutdown acknowledged; the accept loop still needs a poke.
            poke(port);
            return ok;
        }
        // Body: echo until the `.` terminator (print at most 5 data lines).
        let mut body = 0usize;
        let mut line = String::new();
        loop {
            line.clear();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                eprintln!("client: truncated response");
                return false;
            }
            let l = line.trim_end();
            if l == "." {
                break;
            }
            if body <= 5 {
                println!("{l}");
            } else if body == 6 {
                println!("...");
            }
            body += 1;
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end smoke over a real socket: serve on an ephemeral port in a
    /// thread, run queries and a shutdown through the public client, and
    /// check the server drains cleanly.
    #[test]
    fn serve_query_stats_shutdown_roundtrip() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let port = listener.local_addr().unwrap().port();
        drop(listener); // free it for run_serve

        let opts = ServeOptions {
            port,
            rows: 500,
            threads: 2,
            max_concurrent: 2,
            per_query_blocks: 16,
        };
        let server = thread::spawn(move || run_serve(&opts));

        let statements = vec![
            "SELECT *, rank() OVER (PARTITION BY ws_item_sk ORDER BY ws_sold_time_sk) AS r \
             FROM web_sales"
                .to_string(),
            "not sql at all".to_string(), // must come back as err, not kill the server
            ".stats".to_string(),
            ".shutdown".to_string(),
        ];
        // One statement failed, so the client reports false...
        assert!(!run_client(port, &statements));
        // ...but the server still drained cleanly.
        assert!(server.join().expect("server thread"));
    }

    #[test]
    fn protocol_lines_are_single_line() {
        assert_eq!(sanitize("a\nb\r\nc"), "a; b; ; c");
    }
}
