//! `repro explain` — EXPLAIN / EXPLAIN ANALYZE over the harness queries,
//! with optional span tracing to a Chrome trace-event file.
//!
//! `--analyze` executes the plan and prints the per-step
//! modeled-vs-measured table (`wf_core::runtime::explain_analyze`);
//! without it only the plan tree prints (no execution — unless `--trace`
//! forces one, since spans only exist for executed plans). `--trace PATH`
//! writes the execution's timeline as Chrome trace-event JSON (load in
//! `chrome://tracing` or Perfetto) plus a `PATH.folded` folded-stacks file
//! for flamegraphs, then self-validates the file: it must parse with the
//! in-tree JSON parser, contain at least one `step` span per chain step,
//! and — for the parallel workload — interleave at least two thread lanes.
//! CI runs exactly that as its trace-validity smoke step.

use crate::experiments::Harness;
use crate::paper_mb_to_blocks;
use crate::queries;
use crate::regress::{par_chain_query, PAR_WORKERS};
use std::collections::BTreeSet;
use std::sync::Arc;
use wf_common::{Json, TraceSink};
use wf_core::cost::TableStats;
use wf_core::planner::{optimize, Scheme};
use wf_core::runtime::{explain_analyze, ExecEnv};

/// Run the `explain` subcommand. Returns `false` on an unknown workload or
/// a failed trace validation (the caller exits non-zero).
pub fn run_explain(h: &Harness, which: &str, analyze: bool, trace_path: Option<&str>) -> bool {
    let cfg = h.ws_config();
    let table = cfg.generate();
    let stats = TableStats::from_table(&table);
    let blocks = table.block_count();
    let m = paper_mb_to_blocks(150.0, blocks);
    let (query, workers) = match which {
        "q6" => (queries::q6(&cfg), 1),
        "q7" => (queries::q7(&cfg), 1),
        "q8" => (queries::q8(&cfg), 1),
        "q9" => (queries::q9(&cfg), 1),
        "par" => (par_chain_query(table.schema().clone()), PAR_WORKERS),
        other => {
            eprintln!("unknown explain workload {other:?} (expected q6|q7|q8|q9|par)");
            return false;
        }
    };
    let mut env = ExecEnv::with_memory_blocks(m).with_par_workers(workers);
    let sink = trace_path.map(|_| TraceSink::enabled());
    if let Some(s) = &sink {
        env = env.with_trace(Arc::clone(s));
    }
    let plan = optimize(&query, &stats, Scheme::Cso, &env).expect("plan");
    println!(
        "{which}: {} rows, {blocks} blocks, M = {m} blocks (150 paper-MB), workers = {workers}\n",
        table.row_count()
    );
    let mut step_labels: Vec<String> = Vec::new();
    if analyze || sink.is_some() {
        let (report, text) = explain_analyze(&plan, &table, &env).expect("explain analyze");
        step_labels = report
            .step_metrics
            .iter()
            .map(|s| s.label.clone())
            .collect();
        if analyze {
            println!("{text}");
        } else {
            println!("{}", plan.explain(table.schema()));
        }
    } else {
        println!("{}", plan.explain(table.schema()));
    }
    let Some(path) = trace_path else { return true };
    let sink = sink.expect("sink exists when tracing");
    let min_lanes = if which == "par" { 2 } else { 1 };
    match write_and_validate_trace(&sink, path, &step_labels, min_lanes) {
        Ok((spans, lanes)) => {
            println!("trace: {spans} spans across {lanes} lane(s) → {path} (+ {path}.folded)");
            true
        }
        Err(e) => {
            eprintln!("trace validation FAILED: {e}");
            false
        }
    }
}

/// Export the sink to `path` (Chrome trace-event JSON) and `path.folded`
/// (folded stacks), then validate the JSON file: parseable, every expected
/// chain-step label present as a span, and at least `min_lanes` distinct
/// thread lanes. Returns `(span_count, lane_count)`.
pub fn write_and_validate_trace(
    sink: &TraceSink,
    path: &str,
    expected_steps: &[String],
    min_lanes: usize,
) -> Result<(usize, usize), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).ok();
        }
    }
    let json = sink.to_chrome_json();
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    std::fs::write(format!("{path}.folded"), sink.to_folded_stacks())
        .map_err(|e| format!("write {path}.folded: {e}"))?;
    validate_trace_json(&json, expected_steps, min_lanes)
}

/// The validation half of [`write_and_validate_trace`], on the JSON text
/// (separable for tests and the CI smoke step).
pub fn validate_trace_json(
    json: &str,
    expected_steps: &[String],
    min_lanes: usize,
) -> Result<(usize, usize), String> {
    let doc = Json::parse(json).map_err(|e| format!("trace does not parse: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .ok_or("no traceEvents array")?;
    let mut spans = 0usize;
    let mut lanes: BTreeSet<u64> = BTreeSet::new();
    let mut names: BTreeSet<&str> = BTreeSet::new();
    for ev in events {
        if ev.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        spans += 1;
        if let Some(tid) = ev.get("tid").and_then(|t| t.as_u64()) {
            lanes.insert(tid);
        }
        if let Some(name) = ev.get("name").and_then(|n| n.as_str()) {
            names.insert(name);
        }
    }
    for label in expected_steps {
        if !names.contains(label.as_str()) {
            return Err(format!("no span recorded for chain step {label:?}"));
        }
    }
    if lanes.len() < min_lanes {
        return Err(format!(
            "expected >= {min_lanes} thread lanes, trace has {}",
            lanes.len()
        ));
    }
    Ok((spans, lanes.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validator_checks_steps_and_lanes() {
        let sink = TraceSink::enabled();
        {
            let _a = sink.span("step", "scan+filter");
            let _b = sink.span("sort", "run_formation");
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = sink.span("worker", "sort_worker shard=0");
            });
        });
        let json = sink.to_chrome_json();
        let expected = vec!["scan+filter".to_string()];
        let (spans, lanes) = validate_trace_json(&json, &expected, 2).expect("valid");
        assert_eq!(spans, 3);
        assert!(lanes >= 2);
        // A missing step label fails.
        let bogus = vec!["FS→ nope".to_string()];
        assert!(validate_trace_json(&json, &bogus, 1).is_err());
        // An impossible lane floor fails.
        assert!(validate_trace_json(&json, &expected, 9).is_err());
        // Garbage fails to parse.
        assert!(validate_trace_json("not json", &expected, 1).is_err());
    }
}
