//! Micro-benchmarks of the window-function operator itself: ranking,
//! frame-based aggregates and sliding frames over a matched input.

use wf_bench::microbench::BenchGroup;
use wf_common::AttrSet;
use wf_common::{row, AttrId, OrdElem, Row, SortSpec};
use wf_exec::{
    evaluate_window, Bound, FrameSpec, FrameUnits, OpEnv, SegmentedRows, WindowFunction,
};

fn matched_input(n: usize) -> SegmentedRows {
    // Sorted on (g, v): 100 partitions.
    let mut rows: Vec<Row> = (0..n)
        .map(|i| row![(i % 100) as i64, ((i * 7919) % 100_000) as i64])
        .collect();
    rows.sort_by_key(|r| {
        (
            r.get(AttrId::new(0)).as_int().unwrap(),
            r.get(AttrId::new(1)).as_int().unwrap(),
        )
    });
    SegmentedRows::single_segment(rows)
}

fn main() {
    let n = 50_000;
    let input = matched_input(n);
    let wpk = AttrSet::from_iter([AttrId::new(0)]);
    let wok = SortSpec::new(vec![OrdElem::asc(AttrId::new(1))]);
    let val = AttrId::new(1);

    let sliding = FrameSpec {
        units: FrameUnits::Rows,
        start: Bound::Preceding(50),
        end: Bound::Following(50),
    };
    let cases: Vec<(&str, WindowFunction, Option<FrameSpec>)> = vec![
        ("rank", WindowFunction::Rank, None),
        ("dense_rank", WindowFunction::DenseRank, None),
        ("cume_dist", WindowFunction::CumeDist, None),
        ("running_sum", WindowFunction::Sum(val), None),
        ("sliding_avg", WindowFunction::Avg(val), Some(sliding)),
        ("sliding_min", WindowFunction::Min(val), Some(sliding)),
        (
            "lag",
            WindowFunction::Lag {
                col: val,
                offset: 3,
                default: None,
            },
            None,
        ),
    ];

    let mut group = BenchGroup::new("window_ops");
    for (name, func, frame) in cases {
        group.bench(name, || {
            let env = OpEnv::with_memory_blocks(1024);
            evaluate_window(input.clone(), &wpk, &wok, &func, frame, &env).unwrap();
        });
    }
    group.finish();
}
