//! Overhead guard for the disabled trace sink (`TraceSink::disabled()`).
//!
//! The fig3 sort workload runs twice: once as shipped (the sorter's own
//! instrumentation already hits the disabled sink), and once with an
//! artificially amplified span density — one extra disabled `span()` per
//! row on top, far denser than any real instrumentation point. The
//! amplified leg must stay within 2% of the baseline's best wall time,
//! pinning the no-op fast path (no clock read, no lock, no allocation) as
//! effectively free. Noise tolerance: interleaved best-of-N with up to
//! three attempts before the assertion fires.

use std::time::Instant;

use wf_bench::experiments::Harness;
use wf_bench::microbench::{iterations, BenchGroup};
use wf_bench::queries;
use wf_common::TraceSink;
use wf_exec::{sorter, OpEnv, SortKey};

/// Maximum tolerated wall-time ratio of the amplified leg over baseline.
const MAX_OVERHEAD: f64 = 1.02;
const ATTEMPTS: usize = 3;

fn sort_ms(table: &wf_storage::Table, key: &SortKey, spans_per_row: bool) -> f64 {
    let blocks = table.block_count();
    let env = OpEnv::with_memory_blocks(blocks * 4).with_toggles(true, true);
    let rows = table.rows().to_vec();
    let sink = TraceSink::disabled();
    let t0 = Instant::now();
    if spans_per_row {
        for _ in 0..rows.len() {
            let _span = sink.span("bench", "noop");
        }
    }
    let sorted = sorter::sort_rows(rows, key, &env).expect("sort");
    let ms = t0.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(sorted.len(), table.row_count());
    ms
}

fn main() {
    let h = Harness { rows: 30_000 };
    let table = h.ws_config().generate();
    let spec = queries::q1();
    let fs_key = wf_core::plan::default_fs_key(&spec);
    let key = SortKey::new(&fs_key);
    let iters = iterations();

    let mut ratio = f64::INFINITY;
    let mut baseline = f64::INFINITY;
    let mut amplified = f64::INFINITY;
    for attempt in 1..=ATTEMPTS {
        // Interleave the legs so drift (thermal, scheduler) hits both.
        let mut base_best = f64::INFINITY;
        let mut amp_best = f64::INFINITY;
        sort_ms(&table, &key, false); // warm-up
        sort_ms(&table, &key, true);
        for _ in 0..iters {
            base_best = base_best.min(sort_ms(&table, &key, false));
            amp_best = amp_best.min(sort_ms(&table, &key, true));
        }
        ratio = amp_best / base_best;
        baseline = base_best;
        amplified = amp_best;
        eprintln!("attempt {attempt}: baseline {base_best:.3} ms, +1 span/row {amp_best:.3} ms, ratio {ratio:.4}");
        if ratio <= MAX_OVERHEAD {
            break;
        }
    }

    let mut g = BenchGroup::with_iterations("trace_overhead (fig3 sort, 30k rows)", iters);
    g.bench("sort_baseline", || {
        sort_ms(&table, &key, false);
    });
    g.bench("sort_plus_noop_span_per_row", || {
        sort_ms(&table, &key, true);
    });
    g.finish();
    println!("disabled-sink overhead: {ratio:.4}x ({baseline:.3} ms -> {amplified:.3} ms)");

    assert!(
        ratio <= MAX_OVERHEAD,
        "disabled trace sink added {:.2}% wall overhead on the fig3 sort \
         (limit {:.0}%): baseline {baseline:.3} ms, amplified {amplified:.3} ms",
        (ratio - 1.0) * 100.0,
        (MAX_OVERHEAD - 1.0) * 100.0,
    );
}
