//! Bench behind Fig. 3: FS vs HS reordering for Q1/Q2/Q3 at a small and a
//! large memory budget (paper-MB equivalents).
//!
//! Also reports **heap allocation counts** for the external-sort hot path:
//! the replacement-selection/merge heaps used to allocate one `Vec<u8>`
//! per keyed row, which the fixed-width inline key removed. The counting
//! allocator below makes the drop visible: with normalized keys on, the
//! external sort's allocations-per-row now match the comparator path
//! (which carries no keys at all) instead of exceeding it by ≥ 1.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use wf_bench::experiments::Harness;
use wf_bench::microbench::BenchGroup;
use wf_bench::{paper_mb_to_blocks, queries};
use wf_core::cost::{hs_bucket_count, TableStats};
use wf_core::plan::default_fs_key;
use wf_exec::{full_sort, hashed_sort, HsOptions, OpEnv, SegmentedRows};

/// Counts every heap allocation; delegates to the system allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by `f`.
fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn main() {
    let h = Harness { rows: 30_000 };
    let table = h.ws_config().generate();
    let stats = TableStats::from_table(&table);
    let b = table.block_count();
    let mut group = BenchGroup::new("fig3_fs_vs_hs");

    for (qname, spec) in [
        ("q1", queries::q1()),
        ("q2", queries::q2()),
        ("q3", queries::q3()),
    ] {
        let key = default_fs_key(&spec);
        for m_mb in [10.0, 150.0] {
            let m = paper_mb_to_blocks(m_mb, b);
            group.bench(&format!("{qname}_fs/{}", m_mb as u64), || {
                let env = OpEnv::with_memory_blocks(m);
                let input = SegmentedRows::single_segment(table.rows().to_vec());
                full_sort(input, &key, &env).unwrap();
            });
            let whk = spec.wpk().clone();
            let opts = HsOptions::with_buckets(hs_bucket_count(&stats, &whk, m));
            group.bench(&format!("{qname}_hs/{}", m_mb as u64), || {
                let env = OpEnv::with_memory_blocks(m);
                let input = SegmentedRows::single_segment(table.rows().to_vec());
                hashed_sort(input, &whk, &key, &opts, &env).unwrap();
            });
        }
    }
    group.finish();

    // Allocation counts on the spill-heavy external FS sort (q1 key at the
    // small budget): normalized keys ride the heaps inline, so the keyed
    // path allocates no more per row than the comparator reference.
    let key = default_fs_key(&queries::q1());
    let m = paper_mb_to_blocks(10.0, b);
    let rows = table.row_count() as u64;
    println!("\n== fig3 external-sort allocation counts ({rows} rows) ==");
    let mut per_row = [0.0f64; 2];
    for (i, (norm, name)) in [(true, "normkeys"), (false, "comparator")]
        .into_iter()
        .enumerate()
    {
        let env = OpEnv::with_memory_blocks(m).with_toggles(norm, true);
        let input = SegmentedRows::single_segment(table.rows().to_vec());
        let allocs = count_allocs(|| {
            full_sort(input, &key, &env).unwrap();
        });
        per_row[i] = allocs as f64 / rows as f64;
        println!(
            "{name:>12}: {allocs:>10} allocs  ({:.2} per row)",
            per_row[i]
        );
    }
    println!(
        "  key overhead: {:+.2} allocs per row (was ≥ +1.0 with one Vec<u8> per keyed row)",
        per_row[0] - per_row[1]
    );
}
