//! Bench behind Fig. 3: FS vs HS reordering for Q1/Q2/Q3 at a small and a
//! large memory budget (paper-MB equivalents).

use wf_bench::experiments::Harness;
use wf_bench::microbench::BenchGroup;
use wf_bench::{paper_mb_to_blocks, queries};
use wf_core::cost::{hs_bucket_count, TableStats};
use wf_core::plan::default_fs_key;
use wf_exec::{full_sort, hashed_sort, HsOptions, OpEnv, SegmentedRows};

fn main() {
    let h = Harness { rows: 30_000 };
    let table = h.ws_config().generate();
    let stats = TableStats::from_table(&table);
    let b = table.block_count();
    let mut group = BenchGroup::new("fig3_fs_vs_hs");

    for (qname, spec) in [
        ("q1", queries::q1()),
        ("q2", queries::q2()),
        ("q3", queries::q3()),
    ] {
        let key = default_fs_key(&spec);
        for m_mb in [10.0, 150.0] {
            let m = paper_mb_to_blocks(m_mb, b);
            group.bench(&format!("{qname}_fs/{}", m_mb as u64), || {
                let env = OpEnv::with_memory_blocks(m);
                let input = SegmentedRows::single_segment(table.rows().to_vec());
                full_sort(input, &key, &env).unwrap();
            });
            let whk = spec.wpk().clone();
            let opts = HsOptions::with_buckets(hs_bucket_count(&stats, &whk));
            group.bench(&format!("{qname}_hs/{}", m_mb as u64), || {
                let env = OpEnv::with_memory_blocks(m);
                let input = SegmentedRows::single_segment(table.rows().to_vec());
                hashed_sort(input, &whk, &key, &opts, &env).unwrap();
            });
        }
    }
    group.finish();
}
