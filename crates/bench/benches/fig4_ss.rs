//! Bench behind Fig. 4: SS vs FS on an input already sorted on the
//! partition key (Q4 on `web_sales_s`).

use wf_bench::experiments::Harness;
use wf_bench::microbench::BenchGroup;
use wf_bench::{paper_mb_to_blocks, queries};
use wf_common::{OrdElem, SortSpec};
use wf_core::plan::default_fs_key;
use wf_core::props::SegProps;
use wf_datagen::WsColumn;
use wf_exec::{full_sort, segmented_sort, OpEnv, SegmentedRows};

fn main() {
    let h = Harness { rows: 30_000 };
    let table = h.ws_config().generate_sorted_on(WsColumn::Quantity);
    let b = table.block_count();
    let spec = queries::q4_q5();
    let props = SegProps::sorted(SortSpec::new(vec![OrdElem::asc(WsColumn::Quantity.attr())]));
    let split = props.alpha_split(&spec);
    let key = default_fs_key(&spec);

    let mut group = BenchGroup::new("fig4_ss");
    for m_mb in [10.0, 150.0] {
        let m = paper_mb_to_blocks(m_mb, b);
        group.bench(&format!("ss/{}", m_mb as u64), || {
            let env = OpEnv::with_memory_blocks(m);
            let input = SegmentedRows::single_segment(table.rows().to_vec());
            segmented_sort(input, &split.alpha, &split.beta, &env).unwrap();
        });
        group.bench(&format!("fs/{}", m_mb as u64), || {
            let env = OpEnv::with_memory_blocks(m);
            let input = SegmentedRows::single_segment(table.rows().to_vec());
            full_sort(input, &key, &env).unwrap();
        });
    }
    group.finish();
}
