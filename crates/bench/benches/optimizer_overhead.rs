//! Criterion bench behind Table 11: pure planning time per scheme as the
//! number of window functions grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wf_bench::queries::table11_pool;
use wf_core::cost::TableStats;
use wf_core::plan::PlanContext;
use wf_core::planner::{plan_bfo, plan_cso, plan_orcl, plan_psql, BfoOptions};
use wf_core::query::WindowQuery;
use wf_datagen::{random_specs, WsConfig};

fn bench_optimizers(c: &mut Criterion) {
    let cfg = WsConfig::default();
    let stats = TableStats::synthetic(
        400_000,
        400_000 * 214,
        table11_pool().into_iter().map(|a| (a, 10_000)).collect(),
    );
    let mut group = c.benchmark_group("table11_optimizer_overhead");
    group.sample_size(10);
    for n in [6usize, 8, 10] {
        let specs = random_specs(n, &table11_pool(), 1244 + n as u64);
        let query = WindowQuery::new(cfg.schema(), specs);
        let ctx = PlanContext::new(&stats, 37);
        group.bench_with_input(BenchmarkId::new("cso", n), &n, |b, _| {
            b.iter(|| plan_cso(&query, &ctx).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("orcl", n), &n, |b, _| {
            b.iter(|| plan_orcl(&query, &ctx).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("psql", n), &n, |b, _| {
            b.iter(|| plan_psql(&query, &ctx).unwrap())
        });
        if n <= 8 {
            group.bench_with_input(BenchmarkId::new("bfo", n), &n, |b, _| {
                b.iter(|| plan_bfo(&query, &ctx, &BfoOptions::default()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
