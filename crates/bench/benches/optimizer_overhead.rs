//! Bench behind Table 11: pure planning time per scheme as the number of
//! window functions grows.

use wf_bench::microbench::BenchGroup;
use wf_bench::queries::table11_pool;
use wf_core::cost::TableStats;
use wf_core::plan::PlanContext;
use wf_core::planner::{plan_bfo, plan_cso, plan_orcl, plan_psql, BfoOptions};
use wf_core::query::WindowQuery;
use wf_datagen::{random_specs, WsConfig};

fn main() {
    let cfg = WsConfig::default();
    let stats = TableStats::synthetic(
        400_000,
        400_000 * 214,
        table11_pool().into_iter().map(|a| (a, 10_000)).collect(),
    );
    let mut group = BenchGroup::new("table11_optimizer_overhead");
    for n in [6usize, 8, 10] {
        let specs = random_specs(n, &table11_pool(), 1244 + n as u64);
        let query = WindowQuery::new(cfg.schema(), specs);
        let ctx = PlanContext::new(&stats, 37);
        group.bench(&format!("cso/{n}"), || {
            let _ = plan_cso(&query, &ctx);
        });
        group.bench(&format!("orcl/{n}"), || {
            let _ = plan_orcl(&query, &ctx);
        });
        group.bench(&format!("psql/{n}"), || {
            let _ = plan_psql(&query, &ctx);
        });
        if n <= 8 {
            group.bench(&format!("bfo/{n}"), || {
                let _ = plan_bfo(&query, &ctx, &BfoOptions::default());
            });
        }
    }
    group.finish();
}
