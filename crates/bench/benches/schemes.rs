//! Criterion bench behind Figs. 5–8: end-to-end plan execution of Q7 under
//! each optimization scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wf_bench::experiments::Harness;
use wf_bench::{paper_mb_to_blocks, queries};
use wf_core::cost::TableStats;
use wf_core::planner::{optimize, Scheme};
use wf_core::runtime::{execute_plan, ExecEnv};

fn bench_schemes(c: &mut Criterion) {
    let h = Harness { rows: 20_000 };
    let cfg = h.ws_config();
    let table = cfg.generate();
    let stats = TableStats::from_table(&table);
    let query = queries::q7(&cfg);
    let m = paper_mb_to_blocks(50.0, table.block_count());

    let mut group = c.benchmark_group("q7_schemes");
    group.sample_size(10);
    for scheme in [Scheme::Cso, Scheme::Bfo, Scheme::Orcl, Scheme::Psql] {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |bench, &scheme| {
                bench.iter(|| {
                    let env = ExecEnv::with_memory_blocks(m);
                    let plan = optimize(&query, &stats, scheme, &env).unwrap();
                    execute_plan(&plan, &table, &env).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
