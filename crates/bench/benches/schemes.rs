//! Bench behind Figs. 5–8: end-to-end plan execution of Q7 under each
//! optimization scheme.

use wf_bench::experiments::Harness;
use wf_bench::microbench::BenchGroup;
use wf_bench::{paper_mb_to_blocks, queries};
use wf_core::cost::TableStats;
use wf_core::planner::{optimize, Scheme};
use wf_core::runtime::{execute_plan, ExecEnv};

fn main() {
    let h = Harness { rows: 20_000 };
    let cfg = h.ws_config();
    let table = cfg.generate();
    let stats = TableStats::from_table(&table);
    let query = queries::q7(&cfg);
    let m = paper_mb_to_blocks(50.0, table.block_count());

    let mut group = BenchGroup::new("q7_schemes");
    for scheme in [Scheme::Cso, Scheme::Bfo, Scheme::Orcl, Scheme::Psql] {
        group.bench(scheme.name(), || {
            let env = ExecEnv::with_memory_blocks(m);
            let plan = optimize(&query, &stats, scheme, &env).unwrap();
            execute_plan(&plan, &table, &env).unwrap();
        });
    }
    group.finish();
}
