//! Structured execution tracing: spans, per-thread lanes, and exporters.
//!
//! The engine's primary metrics are *modeled* (comparisons, I/O blocks, pool
//! traffic) and deliberately deterministic. This module adds the third,
//! wall-clock domain without disturbing the first two: a [`TraceSink`] hands
//! out RAII [`SpanGuard`]s that record `(category, name, lane, start, dur)`
//! tuples, where a *lane* is a process-unique id assigned to each OS thread —
//! scheduler workers therefore land on their own timeline rows and `Par{..}`
//! executions interleave correctly in a viewer.
//!
//! Contracts:
//!
//! * **Bit-identity** — a sink only reads the clock and records names; it
//!   never touches `CostTracker`, `PoolCounters`, or control flow, so rows,
//!   modeled counters, and pool counters are identical with tracing on or
//!   off (asserted in `tests/trace_observability.rs`).
//! * **Disabled is free** — [`TraceSink::disabled`] returns a shared no-op
//!   sink; opening a span against it performs no clock read, no lock, and no
//!   allocation (guarded by the `trace_overhead` microbench at ≤2%).
//! * **Lock-cheap when enabled** — a span costs two `Instant::now()` calls
//!   and one mutex push at close; there is no per-event I/O.
//!
//! Exporters: [`TraceSink::to_chrome_json`] emits Chrome trace-event JSON
//! (loadable in `chrome://tracing` or <https://ui.perfetto.dev>) and
//! [`TraceSink::to_folded_stacks`] emits collapsed stacks for flamegraph
//! tooling. Both are hand-rolled — the workspace takes no external
//! dependencies — and round-trip through [`crate::json`] in tests.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::write_escaped;

/// One closed span: a named interval on a lane, with its nesting depth at
/// open time (depths reconstruct parent/child structure without timestamp
/// comparisons, which microsecond rounding would make ambiguous).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Coarse grouping shown as the Chrome `cat` field: `"step"`, `"sort"`,
    /// `"spill"`, `"par"`, `"worker"`, `"window"`.
    pub cat: &'static str,
    /// Human-readable span name (e.g. `"run_formation"`, `"worker shard=2"`).
    pub name: String,
    /// Process-unique id of the OS thread the span ran on.
    pub lane: u64,
    /// Microseconds since the sink's epoch.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth on this lane when the span opened (0 = top level).
    pub depth: u32,
}

thread_local! {
    static LANE: Cell<u64> = const { Cell::new(0) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

static NEXT_LANE: AtomicU64 = AtomicU64::new(1);

/// The calling thread's lane id, assigned on first use.
pub fn current_lane() -> u64 {
    LANE.with(|l| {
        let id = l.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
        l.set(id);
        id
    })
}

/// A span recorder. Cheap to share (`Arc`), callable from any thread.
pub struct TraceSink {
    enabled: bool,
    epoch: Instant,
    records: Mutex<Vec<SpanRecord>>,
    open: AtomicI64,
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSink")
            .field("enabled", &self.enabled)
            .field("spans", &self.records.lock().unwrap().len())
            .finish()
    }
}

impl TraceSink {
    /// A fresh recording sink whose epoch is "now".
    pub fn enabled() -> Arc<TraceSink> {
        Arc::new(TraceSink {
            enabled: true,
            epoch: Instant::now(),
            records: Mutex::new(Vec::new()),
            open: AtomicI64::new(0),
        })
    }

    /// The shared no-op sink (the default on every execution environment).
    /// Spans opened against it are inert.
    pub fn disabled() -> Arc<TraceSink> {
        static SINK: OnceLock<Arc<TraceSink>> = OnceLock::new();
        SINK.get_or_init(|| {
            Arc::new(TraceSink {
                enabled: false,
                epoch: Instant::now(),
                records: Mutex::new(Vec::new()),
                open: AtomicI64::new(0),
            })
        })
        .clone()
    }

    /// Whether spans opened against this sink record anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Open a span; it closes (and records) when the guard drops. On a
    /// disabled sink this is a no-op: no clock read, no lock, no allocation.
    pub fn span(&self, cat: &'static str, name: &str) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard(None);
        }
        self.open_span(cat, name.to_string())
    }

    /// Like [`TraceSink::span`] but the name is built lazily, so dynamic
    /// names (`format!`) cost nothing on the disabled path.
    pub fn span_with(&self, cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard<'_> {
        if !self.enabled {
            return SpanGuard(None);
        }
        self.open_span(cat, name())
    }

    fn open_span(&self, cat: &'static str, name: String) -> SpanGuard<'_> {
        let lane = current_lane();
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        self.open.fetch_add(1, Ordering::Relaxed);
        SpanGuard(Some(ActiveSpan {
            sink: self,
            cat,
            name,
            start: Instant::now(),
            lane,
            depth,
        }))
    }

    /// Spans currently open (opened, guard not yet dropped). Zero once an
    /// execution finishes — the span-balance tests assert this.
    pub fn open_spans(&self) -> i64 {
        self.open.load(Ordering::SeqCst)
    }

    /// Snapshot of all closed spans, in a deterministic order
    /// (lane, start, depth, name).
    pub fn records(&self) -> Vec<SpanRecord> {
        let mut out = self.records.lock().unwrap().clone();
        out.sort_by(|a, b| {
            (a.lane, a.start_us, a.depth, &a.name).cmp(&(b.lane, b.start_us, b.depth, &b.name))
        });
        out
    }

    /// Distinct lanes (threads) that recorded at least one span.
    pub fn lane_count(&self) -> usize {
        let mut lanes: Vec<u64> = self
            .records
            .lock()
            .unwrap()
            .iter()
            .map(|r| r.lane)
            .collect();
        lanes.sort_unstable();
        lanes.dedup();
        lanes.len()
    }

    /// Export as Chrome trace-event JSON (the "JSON Array Format" with
    /// `ph:"X"` complete events plus `thread_name` metadata), loadable in
    /// `chrome://tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let records = self.records();
        let mut lanes: Vec<u64> = records.iter().map(|r| r.lane).collect();
        lanes.sort_unstable();
        lanes.dedup();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for lane in &lanes {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
                 \"args\":{{\"name\":\"lane-{lane}\"}}}}"
            ));
        }
        for r in &records {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{\"name\":");
            write_escaped(&mut out, &r.name);
            out.push_str(",\"cat\":");
            write_escaped(&mut out, r.cat);
            out.push_str(&format!(
                ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                r.lane, r.start_us, r.dur_us
            ));
        }
        out.push_str("\n]}\n");
        out
    }

    /// Export as collapsed ("folded") stacks — one `path;to;span self_us`
    /// line per unique stack, aggregated and sorted — the input format of
    /// flamegraph tooling. Each lane roots its own stack (`lane-N`).
    pub fn to_folded_stacks(&self) -> String {
        let records = self.records();
        // Per-record self time: duration minus the duration of direct
        // children, reconstructed from (lane, start, depth) order.
        let mut child_dur = vec![0u64; records.len()];
        let mut paths: Vec<String> = Vec::with_capacity(records.len());
        let mut stack: Vec<usize> = Vec::new();
        for (i, r) in records.iter().enumerate() {
            while let Some(&top) = stack.last() {
                let t = &records[top];
                if t.lane != r.lane || t.depth >= r.depth {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&parent) = stack.last() {
                child_dur[parent] += r.dur_us;
            }
            let mut path = format!("lane-{}", r.lane);
            for &anc in &stack {
                path.push(';');
                path.push_str(&records[anc].name);
            }
            path.push(';');
            path.push_str(&r.name);
            paths.push(path);
            stack.push(i);
        }
        let mut agg: Vec<(String, u64)> = Vec::new();
        for (i, r) in records.iter().enumerate() {
            let self_us = r.dur_us.saturating_sub(child_dur[i]);
            match agg.iter_mut().find(|(p, _)| *p == paths[i]) {
                Some((_, total)) => *total += self_us,
                None => agg.push((paths[i].clone(), self_us)),
            }
        }
        agg.sort();
        let mut out = String::new();
        for (path, self_us) in agg {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&self_us.to_string());
            out.push('\n');
        }
        out
    }
}

/// RAII guard returned by [`TraceSink::span`]; records the span on drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
pub struct SpanGuard<'a>(Option<ActiveSpan<'a>>);

struct ActiveSpan<'a> {
    sink: &'a TraceSink,
    cat: &'static str,
    name: String,
    start: Instant,
    lane: u64,
    depth: u32,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(span) = self.0.take() {
            let end = Instant::now();
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            span.sink.open.fetch_sub(1, Ordering::Relaxed);
            let start_us = span.start.duration_since(span.sink.epoch).as_micros() as u64;
            let dur_us = end.duration_since(span.start).as_micros() as u64;
            span.sink.records.lock().unwrap().push(SpanRecord {
                cat: span.cat,
                name: span.name.clone(),
                lane: span.lane,
                start_us,
                dur_us,
                depth: span.depth,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        {
            let _a = sink.span("step", "outer");
            let _b = sink.span_with("sort", || unreachable!("lazy name must not run"));
        }
        assert_eq!(sink.open_spans(), 0);
        assert!(sink.records().is_empty());
    }

    #[test]
    fn spans_nest_and_balance() {
        let sink = TraceSink::enabled();
        {
            let _a = sink.span("step", "outer");
            assert_eq!(sink.open_spans(), 1);
            {
                let _b = sink.span("sort", "inner");
                assert_eq!(sink.open_spans(), 2);
            }
        }
        assert_eq!(sink.open_spans(), 0);
        let records = sink.records();
        assert_eq!(records.len(), 2);
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        let inner = records.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.lane, inner.lane);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
    }

    #[test]
    fn threads_get_distinct_lanes() {
        let sink = TraceSink::enabled();
        std::thread::scope(|scope| {
            for i in 0..3 {
                let sink = &sink;
                scope.spawn(move || {
                    let _s = sink.span_with("worker", || format!("worker {i}"));
                });
            }
        });
        let _main = sink.span("step", "main");
        drop(_main);
        assert_eq!(sink.lane_count(), 4);
        assert_eq!(sink.open_spans(), 0);
    }

    #[test]
    fn chrome_export_parses_and_carries_every_span() {
        let sink = TraceSink::enabled();
        {
            let _a = sink.span("step", "needs \"escaping\"\n");
            let _b = sink.span("sort", "inner");
        }
        let doc = Json::parse(&sink.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let complete: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        assert!(complete
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("needs \"escaping\"\n")));
        for e in complete {
            assert!(e.get("ts").and_then(Json::as_u64).is_some());
            assert!(e.get("dur").and_then(Json::as_u64).is_some());
            assert!(e.get("tid").and_then(Json::as_u64).is_some());
        }
        // One thread_name metadata record per lane.
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("M")));
    }

    #[test]
    fn folded_stacks_aggregate_self_time_per_path() {
        let sink = TraceSink::enabled();
        {
            let _a = sink.span("step", "a");
            {
                let _b = sink.span("sort", "b");
            }
            {
                let _b = sink.span("sort", "b");
            }
        }
        let folded = sink.to_folded_stacks();
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(lines.len(), 2, "two unique paths: {folded:?}");
        assert!(lines
            .iter()
            .any(|l| l.starts_with("lane-") && l.contains(";a ") && !l.contains(";b")));
        assert!(lines.iter().any(|l| l.contains(";a;b ")));
        for line in lines {
            let (_, self_us) = line.rsplit_once(' ').unwrap();
            self_us.parse::<u64>().unwrap();
        }
    }
}
