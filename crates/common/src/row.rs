//! Rows: fixed-width tuples of [`Value`]s.

use crate::attrs::AttrId;
use crate::value::Value;
use std::fmt;

/// A tuple. Window-function evaluation appends derived columns, so rows grow
/// by one column per evaluated function (the paper's evaluation model).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Column accessor.
    #[inline]
    pub fn get(&self, id: AttrId) -> &Value {
        &self.values[id.index()]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Append a derived column (window-function output).
    pub fn push(&mut self, v: Value) {
        self.values.push(v);
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Bytes this row occupies in the storage codec (2-byte arity header plus
    /// each value's encoding). Keeps block accounting honest without
    /// serializing on the hot path.
    pub fn encoded_len(&self) -> usize {
        2 + self.values.iter().map(Value::encoded_len).sum::<usize>()
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

/// Convenience macro for building rows in tests and examples:
/// `row![1, 2.5, "x", Value::Null]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::row::Row::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_macro_and_accessors() {
        let r = row![1, 2.5, "x"];
        assert_eq!(r.arity(), 3);
        assert_eq!(r.get(AttrId::new(0)), &Value::Int(1));
        assert_eq!(r.get(AttrId::new(2)), &Value::str("x"));
    }

    #[test]
    fn push_appends_column() {
        let mut r = row![1];
        r.push(Value::Int(9));
        assert_eq!(r.arity(), 2);
        assert_eq!(r.get(AttrId::new(1)), &Value::Int(9));
    }

    #[test]
    fn encoded_len_sums_values() {
        let r = row![1, "ab"];
        // 2 header + 9 int + (1+4+2) str
        assert_eq!(r.encoded_len(), 2 + 9 + 7);
    }

    #[test]
    fn display() {
        let mut r = row![1, "x"];
        r.push(Value::Null);
        assert_eq!(r.to_string(), "[1, x, NULL]");
    }
}
