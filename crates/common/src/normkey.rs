//! Byte-comparable normalized sort keys (DuckDB/Spark-style).
//!
//! A [`KeyNormalizer`] encodes a row's sort key under a [`SortSpec`] into a
//! single byte buffer such that plain lexicographic `memcmp` of two buffers
//! produces exactly the ordering of [`crate::RowComparator::compare`]. Sorting then
//! compares `&[u8]` prefixes instead of dispatching on [`Value`] variants per
//! element — the dominant CPU cost of every reorder in the pipeline.
//!
//! ## Encoding (per [`OrdElem`], concatenated in key order)
//!
//! ```text
//! element   := null-marker [payload]
//! null-marker (never inverted — SQL NULL placement is direction-independent):
//!     NULL,  NULLS FIRST  → 0x00          (sorts before any non-null)
//!     NULL,  NULLS LAST   → 0xFF          (sorts after any non-null)
//!     non-null            → 0x7F
//! payload (all bytes XOR 0xFF when the element is DESC):
//!     numeric → 0x10, f64 bits sign-flipped, big-endian (8 bytes)
//!     string  → 0x20, bytes with 0x00 escaped as 0x00 0xFF, then 0x00 0x00
//! ```
//!
//! * The type tag keeps the fixed cross-type rank (numbers < strings) of
//!   [`Value::cmp_nulls_first`].
//! * The sign-flip transform (`flip sign bit` for positives, `invert all
//!   bits` for negatives) maps `f64::total_cmp` order onto unsigned byte
//!   order, so NaN, infinities and `-0.0 < +0.0` order exactly as the
//!   comparator does.
//! * Integers ride the same numeric lane so that `Int(2) == Float(2.0)`
//!   encodes identically (the comparator treats them as equal peers). An
//!   integer whose `f64` cast is lossy (|v| > 2⁵³) is **not normalizable**:
//!   [`KeyNormalizer::encode_into`] reports failure and the caller falls
//!   back to the comparator for that row. Mixed byte/comparator comparisons
//!   stay consistent because byte order equals comparator order wherever
//!   both are defined.
//! * The `0x00 0x00` string terminator (with embedded `0x00` escaped to
//!   `0x00 0xFF`) makes `"ab" < "abc"` hold even when another key element
//!   follows the string.
//!
//! Property tests in `crates/common/tests/` and the executor equivalence
//! suite prove byte order == comparator order over every `Value` type ×
//! direction × null-order combination, including NaN, ±0.0, empty strings
//! and NULLs.

use crate::ord::{Direction, NullOrder, OrdElem, SortSpec};
use crate::row::Row;
use crate::value::Value;

/// Null-marker byte for a NULL value under the given placement.
const NULL_FIRST: u8 = 0x00;
const NULL_LAST: u8 = 0xFF;
/// Null-marker byte for any non-null value (strictly between the two
/// sentinels, constant per element so it never affects non-null order).
const NOT_NULL: u8 = 0x7F;
/// Type tags: numbers sort before strings (the comparator's fixed rank).
const TAG_NUM: u8 = 0x10;
const TAG_STR: u8 = 0x20;

/// Append the order-preserving encoding of `v`'s payload (type tag +
/// value bytes, ascending order) to `out`. Returns `false` — leaving `out`
/// untouched beyond what was appended — when the value has no
/// order-faithful byte encoding (an `Int` whose `f64` cast is lossy).
fn encode_payload(v: &Value, out: &mut Vec<u8>) -> bool {
    match v {
        Value::Null => unreachable!("NULL handled by the null marker"),
        Value::Int(i) => {
            // The comparator compares Int vs Float through an `as f64`
            // cast, so the numeric lane uses f64 bits; that is only
            // faithful for Int vs Int when the cast round-trips.
            let f = *i as f64;
            if f as i128 != *i as i128 {
                return false;
            }
            out.push(TAG_NUM);
            out.extend_from_slice(&flip_f64(f));
            true
        }
        Value::Float(f) => {
            out.push(TAG_NUM);
            out.extend_from_slice(&flip_f64(*f));
            true
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            for &b in s.as_bytes() {
                if b == 0x00 {
                    out.push(0x00);
                    out.push(0xFF);
                } else {
                    out.push(b);
                }
            }
            out.push(0x00);
            out.push(0x00);
            true
        }
    }
}

/// Sign-flip transform: big-endian bytes whose unsigned order equals
/// `f64::total_cmp` order (sign-magnitude → biased unsigned).
#[inline]
fn flip_f64(f: f64) -> [u8; 8] {
    let bits = f.to_bits();
    let flipped = if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    };
    flipped.to_be_bytes()
}

impl OrdElem {
    /// Append this element's normalized encoding of `row` to `out`.
    /// Returns `false` if the value is not normalizable; the buffer may
    /// then hold a partial element and must be truncated by the caller.
    pub fn norm_encode_into(&self, row: &Row, out: &mut Vec<u8>) -> bool {
        let v = row.get(self.attr);
        if v.is_null() {
            out.push(match self.nulls {
                NullOrder::First => NULL_FIRST,
                NullOrder::Last => NULL_LAST,
            });
            return true;
        }
        out.push(NOT_NULL);
        let payload_start = out.len();
        if !encode_payload(v, out) {
            return false;
        }
        if self.dir == Direction::Desc {
            for b in &mut out[payload_start..] {
                *b = !*b;
            }
        }
        true
    }
}

/// Encodes rows' sort keys under a [`SortSpec`] into byte-comparable
/// buffers. Stateless and cheap to clone.
#[derive(Debug, Clone)]
pub struct KeyNormalizer {
    elems: Vec<OrdElem>,
}

impl KeyNormalizer {
    /// Normalizer for the given specification.
    pub fn new(spec: &SortSpec) -> Self {
        KeyNormalizer {
            elems: spec.elems().to_vec(),
        }
    }

    /// Number of key elements.
    pub fn arity(&self) -> usize {
        self.elems.len()
    }

    /// Append `row`'s full normalized key to `out`. On failure (some value
    /// is not normalizable) the buffer is truncated back to its original
    /// length and `false` is returned.
    pub fn encode_into(&self, row: &Row, out: &mut Vec<u8>) -> bool {
        let start = out.len();
        for e in &self.elems {
            if !e.norm_encode_into(row, out) {
                out.truncate(start);
                return false;
            }
        }
        true
    }

    /// `row`'s normalized key as an owned buffer, or `None` when not
    /// normalizable.
    pub fn encode(&self, row: &Row) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(self.elems.len() * 10);
        self.encode_into(row, &mut out).then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ord::RowComparator;
    use crate::row;
    use crate::AttrId;
    use std::cmp::Ordering;

    fn elem(dir: Direction, nulls: NullOrder) -> OrdElem {
        OrdElem {
            attr: AttrId::new(0),
            dir,
            nulls,
        }
    }

    /// Interesting single-column values covering every variant and edge.
    fn sample_values() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Int(i64::MIN),
            Value::Int(-1),
            Value::Int(0),
            Value::Int(1),
            Value::Int(1 << 52),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(-1.5),
            Value::Float(-0.0),
            Value::Float(0.0),
            Value::Float(2.0),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NAN),
            Value::Float(-f64::NAN),
            Value::str(""),
            Value::str("a"),
            Value::str("ab"),
            Value::str("a\u{0}b"),
            Value::str("b"),
        ]
    }

    /// Byte order equals comparator order for every value pair × direction
    /// × null placement — the module's core contract.
    #[test]
    fn byte_order_matches_comparator_all_combinations() {
        let vals = sample_values();
        for dir in [Direction::Asc, Direction::Desc] {
            for nulls in [NullOrder::First, NullOrder::Last] {
                let e = elem(dir, nulls);
                let spec = SortSpec::new(vec![e]);
                let norm = KeyNormalizer::new(&spec);
                let cmp = RowComparator::new(&spec);
                for a in &vals {
                    for b in &vals {
                        let ra = Row::new(vec![a.clone()]);
                        let rb = Row::new(vec![b.clone()]);
                        let (Some(ka), Some(kb)) = (norm.encode(&ra), norm.encode(&rb)) else {
                            continue;
                        };
                        assert_eq!(
                            ka.cmp(&kb),
                            cmp.compare(&ra, &rb),
                            "{a:?} vs {b:?} ({dir:?}, {nulls:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lossy_int_is_not_normalizable() {
        let spec = SortSpec::new(vec![OrdElem::asc(AttrId::new(0))]);
        let norm = KeyNormalizer::new(&spec);
        assert!(norm.encode(&row![(1i64 << 53) + 1]).is_none());
        assert!(norm.encode(&row![i64::MAX]).is_none());
        // Exactly representable big values are fine.
        assert!(norm.encode(&row![1i64 << 53]).is_some());
        assert!(norm.encode(&row![i64::MIN]).is_some());
    }

    #[test]
    fn failed_encode_truncates_buffer() {
        let spec = SortSpec::new(vec![
            OrdElem::asc(AttrId::new(0)),
            OrdElem::asc(AttrId::new(1)),
        ]);
        let norm = KeyNormalizer::new(&spec);
        let mut buf = vec![0xAA];
        assert!(!norm.encode_into(&row![1, i64::MAX], &mut buf));
        assert_eq!(buf, vec![0xAA], "partial element must be rolled back");
    }

    #[test]
    fn equal_values_encode_identically() {
        let spec = SortSpec::new(vec![OrdElem::asc(AttrId::new(0))]);
        let norm = KeyNormalizer::new(&spec);
        // Int(2) and Float(2.0) are comparator-equal peers.
        assert_eq!(norm.encode(&row![2]), norm.encode(&row![2.0]));
        assert_eq!(
            norm.encode(&row![Value::Null]),
            norm.encode(&row![Value::Null])
        );
    }

    #[test]
    fn string_prefix_orders_before_extension_with_trailing_key() {
        // ("ab", 9) vs ("abc", 0): string order must decide before the
        // trailing numeric element leaks into the comparison.
        let spec = SortSpec::new(vec![
            OrdElem::asc(AttrId::new(0)),
            OrdElem::asc(AttrId::new(1)),
        ]);
        let norm = KeyNormalizer::new(&spec);
        let cmp = RowComparator::new(&spec);
        let a = row!["ab", 9];
        let b = row!["abc", 0];
        assert_eq!(cmp.compare(&a, &b), Ordering::Less);
        assert_eq!(
            norm.encode(&a).unwrap().cmp(&norm.encode(&b).unwrap()),
            Ordering::Less
        );
    }

    #[test]
    fn null_placement_unaffected_by_desc() {
        // DESC inverts value order but never NULL placement.
        let e = elem(Direction::Desc, NullOrder::Last);
        let spec = SortSpec::new(vec![e]);
        let norm = KeyNormalizer::new(&spec);
        let null_key = norm.encode(&row![Value::Null]).unwrap();
        let int_key = norm.encode(&row![5]).unwrap();
        assert!(int_key < null_key, "NULLS LAST under DESC keeps NULLs last");
    }

    #[test]
    fn multi_column_lexicographic() {
        let spec = SortSpec::new(vec![
            OrdElem::asc(AttrId::new(0)),
            OrdElem::desc(AttrId::new(1)),
        ]);
        let norm = KeyNormalizer::new(&spec);
        let cmp = RowComparator::new(&spec);
        let rows = [row![1, 5], row![1, 9], row![0, 5], row![1, 5]];
        for a in &rows {
            for b in &rows {
                assert_eq!(
                    norm.encode(a).unwrap().cmp(&norm.encode(b).unwrap()),
                    cmp.compare(a, b),
                );
            }
        }
    }
}
