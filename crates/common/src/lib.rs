//! # wf-common
//!
//! Foundation types shared by every crate of the `wfopt` workspace:
//!
//! * [`Value`] — a dynamically typed SQL value with NULLs,
//! * [`Row`] / [`Schema`] — tuples and their shape,
//! * [`AttrId`], [`AttrSet`], [`AttrSeq`] — the attribute algebra the paper's
//!   Section 2 defines (permutations, prefixes, longest common prefixes),
//! * [`OrdElem`], [`SortSpec`] — ordering elements with direction and NULL
//!   placement, plus comparators over rows.
//!
//! The paper ("Optimization of Analytic Window Functions", VLDB 2012) reasons
//! about window functions `wf = (WPK, WOK)` purely in terms of this algebra;
//! `wf-core` builds the segmented-relation property calculus on top of it.

pub mod attrs;
pub mod error;
pub mod json;
pub mod normkey;
pub mod ord;
pub mod row;
pub mod schema;
pub mod trace;
pub mod value;

pub use attrs::{AttrId, AttrSeq, AttrSet};
pub use error::{Error, Result};
pub use json::Json;
pub use normkey::KeyNormalizer;
pub use ord::{Direction, NullOrder, OrdElem, RowComparator, SortSpec};
pub use row::Row;
pub use schema::{DataType, Field, Schema};
pub use trace::{SpanGuard, SpanRecord, TraceSink};
pub use value::Value;
