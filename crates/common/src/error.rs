//! Error type shared across the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced by the wfopt engine.
///
/// The engine is deliberately panic-free on user input: malformed queries,
/// schema mismatches and resource misconfiguration all surface as `Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A name could not be resolved against a schema.
    UnknownAttribute(String),
    /// A value had a different type than the operation required.
    TypeMismatch { expected: String, found: String },
    /// The schema of a row did not match the expected schema.
    SchemaMismatch(String),
    /// Query is syntactically or semantically invalid.
    InvalidQuery(String),
    /// An execution-time invariant was violated (e.g. an unmatched window
    /// evaluation reached the executor).
    Execution(String),
    /// Resource configuration problem (e.g. a zero-block sort budget).
    Resource(String),
    /// Planner could not produce a plan under the requested constraints.
    Planning(String),
    /// SQL parse error with a byte offset into the input.
    Parse { offset: usize, message: String },
    /// The admission governor refused or timed out a query (queue full,
    /// queue-wait timeout). The shared store is untouched; retrying is safe.
    Admission(String),
    /// The query was canceled via its `CancelToken` before it ran.
    Canceled(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            Error::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            Error::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            Error::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            Error::Execution(msg) => write!(f, "execution error: {msg}"),
            Error::Resource(msg) => write!(f, "resource error: {msg}"),
            Error::Planning(msg) => write!(f, "planning error: {msg}"),
            Error::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            Error::Admission(msg) => write!(f, "admission error: {msg}"),
            Error::Canceled(msg) => write!(f, "query canceled: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(
            Error::UnknownAttribute("x".into()).to_string(),
            "unknown attribute `x`"
        );
        assert_eq!(
            Error::TypeMismatch {
                expected: "Int".into(),
                found: "Str".into()
            }
            .to_string(),
            "type mismatch: expected Int, found Str"
        );
        assert_eq!(
            Error::Parse {
                offset: 3,
                message: "bad token".into()
            }
            .to_string(),
            "parse error at byte 3: bad token"
        );
        assert_eq!(
            Error::Admission("queue full".into()).to_string(),
            "admission error: queue full"
        );
        assert_eq!(
            Error::Canceled("by client".into()).to_string(),
            "query canceled: by client"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::Execution("boom".into()));
    }
}
