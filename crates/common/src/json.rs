//! Minimal JSON value model and recursive-descent parser.
//!
//! The workspace hand-rolls every serialized artifact (BENCH JSON, Chrome
//! trace events) instead of pulling a serde stack, so it also needs a small
//! reader to validate those artifacts round-trip: the regress baseline gate,
//! the `repro --trace` self-check, and the exporter tests all parse with
//! this module. It is a strict-enough subset of RFC 8259 for machine-written
//! JSON: objects, arrays, strings with `\uXXXX` escapes, numbers parsed as
//! `f64`, booleans, and `null`. Object keys keep their document order (the
//! trace exporter's output is deterministic, and tests pin it).

use crate::error::{Error, Result};

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers included), held as `f64`.
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object member lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as an unsigned integer (must be whole and in range).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members in document order, if this is an object.
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Append `s` to `out` as a JSON string literal (quotes included), escaping
/// per RFC 8259. Shared by every hand-rolled emitter in the workspace.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error::Parse {
            offset: self.pos,
            message: format!("json: {message}"),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\uXXXX` holding the low half.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + low
                                            .checked_sub(0xDC00)
                                            .ok_or_else(|| self.err("invalid low surrogate"))?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Four hex digits; the caller has already consumed the `\u` prefix.
    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = Json::parse(r#"{"a": [1, {"b": "x"}, null], "c": true}"#).unwrap();
        assert_eq!(doc.get("c").and_then(Json::as_bool), Some(true));
        let arr = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(arr[2], Json::Null);
    }

    #[test]
    fn preserves_member_order() {
        let doc = Json::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = doc
            .members()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn resolves_escapes_and_surrogates() {
        let doc = Json::parse(r#""a\n\t\"\\ \u0041 \ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\n\t\"\\ A \u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "nan"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let original = "line\nquote\" back\\slash \t ünïcode 😀 \u{1}";
        let mut lit = String::new();
        write_escaped(&mut lit, original);
        assert_eq!(Json::parse(&lit).unwrap().as_str(), Some(original));
    }
}
