//! Dynamically typed SQL values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A SQL value. `Null` is a first-class member so that window ordering can
/// implement `NULLS FIRST` / `NULLS LAST` placement.
///
/// Floats are totally ordered via `f64::total_cmp`, which keeps sorting and
/// hashing consistent (NaN sorts after all other numbers).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float, totally ordered via `total_cmp`.
    Float(f64),
    /// Interned UTF-8 string; `Arc` keeps row cloning cheap.
    Str(Arc<str>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// True iff this is `Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Str(_) => "Str",
        }
    }

    /// Integer payload, if any.
    #[inline]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (Int or Float).
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number of bytes this value occupies in the row codec; used for block
    /// accounting. Must stay in sync with `wf-storage`'s codec.
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 1 + 8,
            Value::Float(_) => 1 + 8,
            Value::Str(s) => 1 + 4 + s.len(),
        }
    }

    /// Comparison where `Null` sorts *before* every non-null value and values
    /// of different types order by a fixed type rank (Int and Float compare
    /// numerically). Direction and NULL placement are applied by
    /// [`crate::ord::RowComparator`], not here.
    pub fn cmp_nulls_first(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.as_ref().cmp(b.as_ref()),
            // Fixed cross-type rank: numbers < strings.
            (Int(_) | Float(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_) | Float(_)) => Ordering::Greater,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_nulls_first(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_nulls_first(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                // Hash ints through their f64-compatible bits only when the
                // value is representable; equality between Int(2) and
                // Float(2.0) must imply equal hashes.
                (*v as f64).to_bits().hash(state);
            }
            Value::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first_in_base_order() {
        assert_eq!(Value::Null.cmp(&Value::Int(i64::MIN)), Ordering::Less);
        assert_eq!(Value::Int(0).cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).cmp(&Value::Int(2)), Ordering::Greater);
    }

    #[test]
    fn nan_is_ordered_and_equal_to_itself() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(f64::INFINITY).cmp(&nan), Ordering::Less);
    }

    #[test]
    fn strings_order_lexicographically_after_numbers() {
        assert_eq!(Value::str("a").cmp(&Value::str("b")), Ordering::Less);
        assert_eq!(Value::Int(999).cmp(&Value::str("0")), Ordering::Less);
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(hash_of(&Value::str("x")), hash_of(&Value::str("x")));
        assert_ne!(hash_of(&Value::Null), hash_of(&Value::Int(0)));
    }

    #[test]
    fn encoded_len_matches_variants() {
        assert_eq!(Value::Null.encoded_len(), 1);
        assert_eq!(Value::Int(1).encoded_len(), 9);
        assert_eq!(Value::Float(1.0).encoded_len(), 9);
        assert_eq!(Value::str("abc").encoded_len(), 8);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(2.0f64)), Value::Float(2.0));
        assert_eq!(Value::from("s"), Value::str("s"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Float(4.5).as_f64(), Some(4.5));
        assert_eq!(Value::Int(4).as_f64(), Some(4.0));
        assert_eq!(Value::str("q").as_str(), Some("q"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_int(), None);
    }
}
