//! Direction-aware ordering elements and row comparators.
//!
//! A physical sort key is a sequence of [`OrdElem`]s — attribute plus
//! direction plus NULL placement (`salary DESC NULLS LAST` in the paper's
//! Example 1). The property algebra in `wf-core` reasons over these
//! sequences; the executors in `wf-exec` compare rows with
//! [`RowComparator`].

use crate::attrs::{AttrId, AttrSeq, AttrSet};
use crate::row::Row;
use std::cmp::Ordering;
use std::fmt;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    #[default]
    Asc,
    Desc,
}

/// NULL placement within a sort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NullOrder {
    /// NULLs sort before all non-null values (PostgreSQL default for ASC is
    /// actually NULLS LAST; we default to NULLS LAST to match).
    First,
    #[default]
    Last,
}

/// One element of a sort key: attribute, direction, NULL placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrdElem {
    pub attr: AttrId,
    pub dir: Direction,
    pub nulls: NullOrder,
}

impl OrdElem {
    /// Ascending, NULLS LAST — the canonical element used for partition-key
    /// regions, where any consistent direction produces valid partitions.
    pub fn asc(attr: AttrId) -> Self {
        OrdElem {
            attr,
            dir: Direction::Asc,
            nulls: NullOrder::Last,
        }
    }

    /// Descending, NULLS LAST (the paper's Example 1).
    pub fn desc(attr: AttrId) -> Self {
        OrdElem {
            attr,
            dir: Direction::Desc,
            nulls: NullOrder::Last,
        }
    }

    /// Compare two rows on just this element.
    #[inline]
    pub fn compare(&self, left: &Row, right: &Row) -> Ordering {
        let l = left.get(self.attr);
        let r = right.get(self.attr);
        match (l.is_null(), r.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => match self.nulls {
                NullOrder::First => Ordering::Less,
                NullOrder::Last => Ordering::Greater,
            },
            (false, true) => match self.nulls {
                NullOrder::First => Ordering::Greater,
                NullOrder::Last => Ordering::Less,
            },
            (false, false) => {
                let base = l.cmp_nulls_first(r);
                match self.dir {
                    Direction::Asc => base,
                    Direction::Desc => base.reverse(),
                }
            }
        }
    }
}

impl fmt::Display for OrdElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.attr)?;
        if self.dir == Direction::Desc {
            write!(f, " desc")?;
        }
        if self.nulls == NullOrder::First {
            write!(f, " nulls first")?;
        }
        Ok(())
    }
}

/// A complete sort specification: an ordered list of [`OrdElem`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct SortSpec {
    elems: Vec<OrdElem>,
}

impl SortSpec {
    /// Empty specification (`ε`).
    pub fn empty() -> Self {
        SortSpec { elems: Vec::new() }
    }

    /// From elements.
    pub fn new(elems: Vec<OrdElem>) -> Self {
        SortSpec { elems }
    }

    /// All-ascending specification over a plain attribute sequence.
    pub fn asc_over(seq: &AttrSeq) -> Self {
        SortSpec::new(seq.as_slice().iter().map(|&a| OrdElem::asc(a)).collect())
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when `ε`.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Element view.
    pub fn elems(&self) -> &[OrdElem] {
        &self.elems
    }

    /// Attribute sequence, dropping directions.
    pub fn attr_seq(&self) -> AttrSeq {
        AttrSeq::new(self.elems.iter().map(|e| e.attr).collect())
    }

    /// Attribute set.
    pub fn attr_set(&self) -> AttrSet {
        AttrSet::from_iter(self.elems.iter().map(|e| e.attr))
    }

    /// Concatenation.
    pub fn concat(&self, other: &SortSpec) -> SortSpec {
        SortSpec::new(
            self.elems
                .iter()
                .chain(other.elems.iter())
                .copied()
                .collect(),
        )
    }

    /// Exact-element prefix test (`self ≤ other`): every element must match
    /// attribute, direction *and* NULL placement.
    pub fn is_prefix_of(&self, other: &SortSpec) -> bool {
        self.len() <= other.len() && self.elems == other.elems[..self.len()]
    }

    /// Drop elements whose attribute is in `drop` (deleting constants from an
    /// ordering preserves it).
    pub fn without_attrs(&self, drop: &AttrSet) -> SortSpec {
        SortSpec::new(
            self.elems
                .iter()
                .copied()
                .filter(|e| !drop.contains(e.attr))
                .collect(),
        )
    }

    /// Keep only the first occurrence of each attribute (later occurrences
    /// add no ordering information).
    pub fn dedup_attrs(&self) -> SortSpec {
        let mut seen = AttrSet::empty();
        let mut out = Vec::with_capacity(self.elems.len());
        for e in &self.elems {
            if !seen.contains(e.attr) {
                seen.insert(e.attr);
                out.push(*e);
            }
        }
        SortSpec::new(out)
    }

    /// Prefix of the given length.
    pub fn prefix(&self, n: usize) -> SortSpec {
        SortSpec::new(self.elems[..n.min(self.elems.len())].to_vec())
    }

    /// Suffix starting at `n`.
    pub fn suffix(&self, n: usize) -> SortSpec {
        SortSpec::new(self.elems[n.min(self.elems.len())..].to_vec())
    }
}

impl FromIterator<OrdElem> for SortSpec {
    fn from_iter<I: IntoIterator<Item = OrdElem>>(iter: I) -> Self {
        SortSpec::new(iter.into_iter().collect())
    }
}

impl fmt::Display for SortSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

/// Compares rows according to a [`SortSpec`]; optionally counts comparisons
/// through a callback so executors can report CPU work.
#[derive(Clone)]
pub struct RowComparator {
    elems: Vec<OrdElem>,
}

impl RowComparator {
    /// Build from a specification.
    pub fn new(spec: &SortSpec) -> Self {
        RowComparator {
            elems: spec.elems().to_vec(),
        }
    }

    /// Compare two rows element by element.
    #[inline]
    pub fn compare(&self, left: &Row, right: &Row) -> Ordering {
        for e in &self.elems {
            let ord = e.compare(left, right);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// True when the two rows are equal under this comparator (peers).
    #[inline]
    pub fn equal(&self, left: &Row, right: &Row) -> bool {
        self.compare(left, right) == Ordering::Equal
    }

    /// Number of key elements.
    pub fn arity(&self) -> usize {
        self.elems.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::value::Value;

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }

    #[test]
    fn asc_desc_compare() {
        let r1 = row![1, 10];
        let r2 = row![1, 20];
        assert_eq!(OrdElem::asc(a(1)).compare(&r1, &r2), Ordering::Less);
        assert_eq!(OrdElem::desc(a(1)).compare(&r1, &r2), Ordering::Greater);
        assert_eq!(OrdElem::asc(a(0)).compare(&r1, &r2), Ordering::Equal);
    }

    #[test]
    fn null_placement() {
        let null_row = row![Value::Null];
        let int_row = row![5];
        let last = OrdElem {
            attr: a(0),
            dir: Direction::Asc,
            nulls: NullOrder::Last,
        };
        let first = OrdElem {
            attr: a(0),
            dir: Direction::Asc,
            nulls: NullOrder::First,
        };
        assert_eq!(last.compare(&null_row, &int_row), Ordering::Greater);
        assert_eq!(first.compare(&null_row, &int_row), Ordering::Less);
        assert_eq!(last.compare(&null_row, &null_row), Ordering::Equal);
        // Desc does not flip NULL placement (SQL semantics: placement is
        // explicit, not direction-relative).
        let desc_last = OrdElem {
            attr: a(0),
            dir: Direction::Desc,
            nulls: NullOrder::Last,
        };
        assert_eq!(desc_last.compare(&null_row, &int_row), Ordering::Greater);
    }

    #[test]
    fn comparator_lexicographic() {
        let spec = SortSpec::new(vec![OrdElem::asc(a(0)), OrdElem::desc(a(1))]);
        let cmp = RowComparator::new(&spec);
        assert_eq!(cmp.compare(&row![1, 5], &row![1, 9]), Ordering::Greater);
        assert_eq!(cmp.compare(&row![0, 5], &row![1, 9]), Ordering::Less);
        assert!(cmp.equal(&row![1, 5], &row![1, 5]));
    }

    #[test]
    fn spec_prefix_requires_exact_elements() {
        let ab = SortSpec::new(vec![OrdElem::asc(a(0)), OrdElem::asc(a(1))]);
        let ab_desc = SortSpec::new(vec![OrdElem::asc(a(0)), OrdElem::desc(a(1))]);
        assert!(SortSpec::new(vec![OrdElem::asc(a(0))]).is_prefix_of(&ab));
        assert!(!SortSpec::new(vec![OrdElem::desc(a(0))]).is_prefix_of(&ab));
        assert!(!ab.is_prefix_of(&ab_desc));
        assert!(SortSpec::empty().is_prefix_of(&ab));
    }

    #[test]
    fn spec_without_and_dedup() {
        let s = SortSpec::new(vec![
            OrdElem::asc(a(0)),
            OrdElem::desc(a(1)),
            OrdElem::asc(a(0)),
        ]);
        assert_eq!(s.dedup_attrs().len(), 2);
        let dropped = s.without_attrs(&AttrSet::from_iter([a(0)]));
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped.elems()[0].attr, a(1));
    }

    #[test]
    fn spec_prefix_suffix_concat() {
        let s = SortSpec::new(vec![
            OrdElem::asc(a(0)),
            OrdElem::asc(a(1)),
            OrdElem::asc(a(2)),
        ]);
        assert_eq!(s.prefix(2).attr_seq().as_slice(), &[a(0), a(1)]);
        assert_eq!(s.suffix(2).attr_seq().as_slice(), &[a(2)]);
        assert_eq!(s.prefix(9).len(), 3);
        assert_eq!(s.prefix(1).concat(&s.suffix(1)), s);
    }
}
