//! Schemas: ordered lists of named, typed fields.

use crate::attrs::AttrId;
use crate::error::{Error, Result};
use std::fmt;
use std::sync::Arc;

/// Declared type of a column. The engine is dynamically typed at the value
/// level; `DataType` is used for binding and for generator/codec decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Str => write!(f, "TEXT"),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered collection of fields. Attribute ids ([`AttrId`]) are positions
/// in the schema, so resolving a name yields the id used by the attribute
/// algebra throughout the optimizer.
///
/// Schemas are cheaply cloneable (`Arc` inside).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// Build a schema from fields. Names must be unique (case-insensitive).
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            for g in &fields[..i] {
                if f.name.eq_ignore_ascii_case(&g.name) {
                    return Err(Error::SchemaMismatch(format!(
                        "duplicate field name `{}`",
                        f.name
                    )));
                }
            }
        }
        Ok(Schema {
            fields: fields.into(),
        })
    }

    /// Convenience constructor from `(name, type)` pairs; panics on duplicate
    /// names (intended for tests and static schemas).
    pub fn of(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| Field::new(*n, *t)).collect())
            .expect("static schema must have unique names")
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// The field at position `id`.
    pub fn field(&self, id: AttrId) -> &Field {
        &self.fields[id.index()]
    }

    /// Resolve a name (case-insensitive) to an attribute id.
    pub fn resolve(&self, name: &str) -> Result<AttrId> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
            .map(AttrId::new)
            .ok_or_else(|| Error::UnknownAttribute(name.to_string()))
    }

    /// Name of an attribute id (for plan display).
    pub fn name(&self, id: AttrId) -> &str {
        &self.fields[id.index()].name
    }

    /// A new schema with `extra` appended (window functions append their
    /// output column to the windowed table).
    pub fn with_appended(&self, extra: Field) -> Result<Schema> {
        let mut fields: Vec<Field> = self.fields.to_vec();
        fields.push(extra);
        Schema::new(fields)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::of(&[
            ("a", DataType::Int),
            ("b", DataType::Str),
            ("c", DataType::Float),
        ])
    }

    #[test]
    fn resolve_is_case_insensitive() {
        let s = abc();
        assert_eq!(s.resolve("a").unwrap(), AttrId::new(0));
        assert_eq!(s.resolve("B").unwrap(), AttrId::new(1));
        assert!(matches!(s.resolve("zz"), Err(Error::UnknownAttribute(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("X", DataType::Int),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn with_appended_extends() {
        let s = abc();
        let s2 = s.with_appended(Field::new("rank", DataType::Int)).unwrap();
        assert_eq!(s2.len(), 4);
        assert_eq!(s2.resolve("rank").unwrap(), AttrId::new(3));
        // Original untouched.
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn appended_duplicate_rejected() {
        let s = abc();
        assert!(s.with_appended(Field::new("a", DataType::Int)).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(abc().to_string(), "(a INT, b TEXT, c FLOAT)");
    }
}
