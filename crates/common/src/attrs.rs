//! Attribute algebra: ids, sets and sequences (paper §2).
//!
//! The paper manipulates window specifications with a small algebra over
//! attribute *sets* (`WPK`, hash keys, segment keys `X`) and attribute
//! *sequences* (`WOK`, sort keys `Y`): permutations, concatenation `X ∘ Y`,
//! longest common prefix `X ∧ Y`, and prefix tests `X ≤ Y`. This module
//! implements that algebra for plain attributes; direction-aware sequences
//! live in [`crate::ord`].

use std::fmt;

/// Identifier of an attribute: its position in a [`crate::Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(u16);

impl AttrId {
    /// Build from a column position.
    pub fn new(index: usize) -> Self {
        assert!(index <= u16::MAX as usize, "schema wider than u16::MAX");
        AttrId(index as u16)
    }

    /// Position in the schema.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A set of attributes, stored sorted and deduplicated so that set equality
/// is representation equality.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrSet {
    elems: Vec<AttrId>,
}

impl AttrSet {
    /// Empty set.
    pub fn empty() -> Self {
        AttrSet { elems: Vec::new() }
    }

    /// Build from any iterator; duplicates collapse.
    /// (Also available through `FromIterator`; the inherent method keeps
    /// call sites free of `use` noise.)
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = AttrId>) -> Self {
        let mut elems: Vec<AttrId> = iter.into_iter().collect();
        elems.sort_unstable();
        elems.dedup();
        AttrSet { elems }
    }

    /// Number of attributes (`|X|`).
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Sorted member view.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.elems.iter().copied()
    }

    /// Sorted member slice.
    pub fn as_slice(&self) -> &[AttrId] {
        &self.elems
    }

    /// Membership test.
    pub fn contains(&self, a: AttrId) -> bool {
        self.elems.binary_search(&a).is_ok()
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        self.elems.iter().all(|a| other.contains(*a))
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        AttrSet::from_iter(self.iter().chain(other.iter()))
    }

    /// `self ∩ other`.
    pub fn intersect(&self, other: &AttrSet) -> AttrSet {
        AttrSet::from_iter(self.iter().filter(|a| other.contains(*a)))
    }

    /// `self − other`.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        AttrSet::from_iter(self.iter().filter(|a| !other.contains(*a)))
    }

    /// Insert one attribute.
    pub fn insert(&mut self, a: AttrId) {
        if let Err(pos) = self.elems.binary_search(&a) {
            self.elems.insert(pos, a);
        }
    }

    /// Remove one attribute; returns whether it was present.
    pub fn remove(&mut self, a: AttrId) -> bool {
        match self.elems.binary_search(&a) {
            Ok(pos) => {
                self.elems.remove(pos);
                true
            }
            Err(_) => false,
        }
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        AttrSet::from_iter(iter)
    }
}

impl From<&[AttrId]> for AttrSet {
    fn from(s: &[AttrId]) -> Self {
        AttrSet::from_iter(s.iter().copied())
    }
}

/// A sequence of attributes (ordering keys ignore direction here).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct AttrSeq {
    elems: Vec<AttrId>,
}

impl AttrSeq {
    /// Empty sequence (`ε`).
    pub fn empty() -> Self {
        AttrSeq { elems: Vec::new() }
    }

    /// Build from attributes in order.
    pub fn new(elems: Vec<AttrId>) -> Self {
        AttrSeq { elems }
    }

    /// Length (`|X|`).
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when `ε`.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Element view.
    pub fn as_slice(&self) -> &[AttrId] {
        &self.elems
    }

    /// The set of attributes occurring in the sequence (`attr(X)`).
    pub fn attr_set(&self) -> AttrSet {
        AttrSet::from_iter(self.elems.iter().copied())
    }

    /// Concatenation `self ∘ other`.
    pub fn concat(&self, other: &AttrSeq) -> AttrSeq {
        AttrSeq::new(
            self.elems
                .iter()
                .chain(other.elems.iter())
                .copied()
                .collect(),
        )
    }

    /// Longest common prefix `self ∧ other`.
    pub fn common_prefix(&self, other: &AttrSeq) -> AttrSeq {
        let n = self
            .elems
            .iter()
            .zip(other.elems.iter())
            .take_while(|(a, b)| a == b)
            .count();
        AttrSeq::new(self.elems[..n].to_vec())
    }

    /// Prefix test `self ≤ other`.
    pub fn is_prefix_of(&self, other: &AttrSeq) -> bool {
        self.len() <= other.len() && self.elems == other.elems[..self.len()]
    }

    /// Proper-prefix test `self < other`.
    pub fn is_proper_prefix_of(&self, other: &AttrSeq) -> bool {
        self.len() < other.len() && self.is_prefix_of(other)
    }

    /// Sequence with all attributes in `drop` removed (used when constants
    /// are deleted from an ordering).
    pub fn without(&self, drop: &AttrSet) -> AttrSeq {
        AttrSeq::new(
            self.elems
                .iter()
                .copied()
                .filter(|a| !drop.contains(*a))
                .collect(),
        )
    }

    /// Sequence with later duplicates removed (a second occurrence of an
    /// attribute in a sort key adds no ordering information).
    pub fn dedup_keep_first(&self) -> AttrSeq {
        let mut seen = AttrSet::empty();
        let mut out = Vec::with_capacity(self.elems.len());
        for &a in &self.elems {
            if !seen.contains(a) {
                seen.insert(a);
                out.push(a);
            }
        }
        AttrSeq::new(out)
    }
}

impl FromIterator<AttrId> for AttrSeq {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        AttrSeq::new(iter.into_iter().collect())
    }
}

impl fmt::Display for AttrSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: usize) -> AttrId {
        AttrId::new(i)
    }
    fn set(ids: &[usize]) -> AttrSet {
        AttrSet::from_iter(ids.iter().map(|&i| a(i)))
    }
    fn seq(ids: &[usize]) -> AttrSeq {
        AttrSeq::new(ids.iter().map(|&i| a(i)).collect())
    }

    #[test]
    fn set_dedup_and_order_independence() {
        assert_eq!(set(&[3, 1, 1, 2]), set(&[1, 2, 3]));
        assert_eq!(set(&[3, 1, 2]).len(), 3);
    }

    #[test]
    fn set_ops() {
        let x = set(&[1, 2, 3]);
        let y = set(&[2, 3, 4]);
        assert_eq!(x.union(&y), set(&[1, 2, 3, 4]));
        assert_eq!(x.intersect(&y), set(&[2, 3]));
        assert_eq!(x.difference(&y), set(&[1]));
        assert!(set(&[2]).is_subset(&x));
        assert!(!x.is_subset(&y));
        assert!(AttrSet::empty().is_subset(&x));
    }

    #[test]
    fn set_insert_remove() {
        let mut s = set(&[1, 3]);
        s.insert(a(2));
        assert_eq!(s, set(&[1, 2, 3]));
        s.insert(a(2));
        assert_eq!(s.len(), 3);
        assert!(s.remove(a(1)));
        assert!(!s.remove(a(1)));
        assert_eq!(s, set(&[2, 3]));
    }

    #[test]
    fn seq_concat_prefix() {
        let x = seq(&[1, 2]);
        let y = seq(&[3]);
        assert_eq!(x.concat(&y), seq(&[1, 2, 3]));
        assert!(x.is_prefix_of(&seq(&[1, 2, 3])));
        assert!(x.is_prefix_of(&x));
        assert!(!x.is_proper_prefix_of(&x));
        assert!(x.is_proper_prefix_of(&seq(&[1, 2, 3])));
        assert!(!seq(&[2, 1]).is_prefix_of(&seq(&[1, 2, 3])));
        assert!(AttrSeq::empty().is_prefix_of(&x));
    }

    #[test]
    fn seq_common_prefix() {
        assert_eq!(
            seq(&[1, 2, 3]).common_prefix(&seq(&[1, 2, 4])),
            seq(&[1, 2])
        );
        assert_eq!(seq(&[1]).common_prefix(&seq(&[2])), AttrSeq::empty());
        assert_eq!(seq(&[1, 2]).common_prefix(&seq(&[1, 2])), seq(&[1, 2]));
    }

    #[test]
    fn seq_without_and_dedup() {
        assert_eq!(seq(&[1, 2, 3, 2]).without(&set(&[2])), seq(&[1, 3]));
        assert_eq!(seq(&[1, 2, 1, 3, 2]).dedup_keep_first(), seq(&[1, 2, 3]));
    }

    #[test]
    fn seq_attr_set() {
        assert_eq!(seq(&[3, 1, 3]).attr_set(), set(&[1, 3]));
    }
}
