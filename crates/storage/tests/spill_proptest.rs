//! Randomized (deterministic-seed) tests for the storage layer: codec
//! round-trips on arbitrary rows and spill files preserving arbitrary row
//! sequences with exact block accounting.
//!
//! These were originally `proptest` properties; the workspace builds without
//! external dependencies, so they now enumerate a fixed seeded sample of the
//! same input space (mixed-type rows, empty rows, long strings, extremes).

use std::sync::Arc;
use wf_common::{Row, Value};
use wf_storage::bytebuf::ByteBuf;
use wf_storage::codec::{decode_row, encode_row};
use wf_storage::spill::SpillMedium;
use wf_storage::{blocks_for_bytes, CostTracker, SpillFile};

/// SplitMix64 — the same tiny deterministic generator the test helpers use.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn value(&mut self) -> Value {
        match self.next() % 4 {
            0 => Value::Null,
            1 => Value::Int(self.next() as i64),
            2 => Value::Float(f64::from_bits(self.next() % (1 << 62))),
            _ => {
                let len = (self.next() % 41) as usize;
                let s: String = (0..len)
                    .map(|_| char::from_u32(32 + (self.next() % 95) as u32).unwrap())
                    .collect();
                Value::str(s)
            }
        }
    }

    fn row(&mut self) -> Row {
        let arity = (self.next() % 8) as usize;
        Row::new((0..arity).map(|_| self.value()).collect())
    }
}

#[test]
fn codec_round_trips_and_encoded_len_is_exact() {
    let mut rng = Rng(1);
    let mut cases: Vec<Row> = (0..64).map(|_| rng.row()).collect();
    cases.push(Row::new(vec![]));
    cases.push(Row::new(vec![
        Value::Int(i64::MIN),
        Value::Int(i64::MAX),
        Value::Float(f64::NEG_INFINITY),
        Value::Float(f64::NAN),
        Value::str(String::new()),
    ]));
    for row in cases {
        let mut buf = ByteBuf::new();
        encode_row(&row, &mut buf);
        assert_eq!(
            buf.len(),
            row.encoded_len(),
            "encoded_len must match codec: {row:?}"
        );
        let mut cursor = buf.as_slice();
        let back = decode_row(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        assert_eq!(back, row);
    }
}

#[test]
fn spill_files_preserve_sequences() {
    let mut rng = Rng(2);
    for case in 0..32 {
        let n = (rng.next() % 120) as usize;
        let rows: Vec<Row> = (0..n).map(|_| rng.row()).collect();
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::create(SpillMedium::Simulated, Arc::clone(&tracker)).unwrap();
        for r in &rows {
            f.push(r).unwrap();
        }
        let mut reader = f.into_reader().unwrap();
        let back = reader.read_all().unwrap();
        assert_eq!(back, rows, "case {case}");

        let bytes: usize = rows.iter().map(Row::encoded_len).sum();
        let s = tracker.snapshot();
        let min_blocks = blocks_for_bytes(bytes);
        assert!(s.blocks_written >= min_blocks, "case {case}");
        assert!(
            s.blocks_written <= min_blocks + 1,
            "case {case}: at most one trailing partial block"
        );
        assert_eq!(s.blocks_read, s.blocks_written, "case {case}");
    }
}
