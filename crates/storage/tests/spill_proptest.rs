//! Property-based tests for the storage layer: codec round-trips on
//! arbitrary rows and spill files preserving arbitrary row sequences with
//! exact block accounting.

use bytes::BytesMut;
use proptest::prelude::*;
use std::sync::Arc;
use wf_common::{Row, Value};
use wf_storage::codec::{decode_row, encode_row};
use wf_storage::spill::SpillMedium;
use wf_storage::{blocks_for_bytes, CostTracker, SpillFile};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        ".{0,40}".prop_map(Value::str),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    proptest::collection::vec(arb_value(), 0..8).prop_map(Row::new)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn codec_round_trips_and_encoded_len_is_exact(row in arb_row()) {
        let mut buf = BytesMut::new();
        encode_row(&row, &mut buf);
        prop_assert_eq!(buf.len(), row.encoded_len());
        let mut cursor = buf.freeze();
        let back = decode_row(&mut cursor).unwrap();
        prop_assert_eq!(back, row);
    }

    #[test]
    fn spill_files_preserve_sequences(rows in proptest::collection::vec(arb_row(), 0..120)) {
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::create(SpillMedium::Simulated, Arc::clone(&tracker)).unwrap();
        for r in &rows {
            f.push(r).unwrap();
        }
        let mut reader = f.into_reader().unwrap();
        let back = reader.read_all().unwrap();
        prop_assert_eq!(&back, &rows);

        let bytes: usize = rows.iter().map(Row::encoded_len).sum();
        let s = tracker.snapshot();
        let min_blocks = blocks_for_bytes(bytes);
        prop_assert!(s.blocks_written >= min_blocks);
        prop_assert!(s.blocks_written <= min_blocks + 1, "at most one trailing partial block");
        prop_assert_eq!(s.blocks_read, s.blocks_written);
    }
}
