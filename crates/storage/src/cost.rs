//! Execution cost tracking and the calibrated time model.
//!
//! The paper measures wall-clock plan execution time on a 14.3 GB table over
//! SATA disks. At laptop scale with a simulated device, wall time alone no
//! longer reflects I/O, so every operator charges its work here:
//!
//! * block reads / writes (spill traffic),
//! * key comparisons (run formation heaps, merges, in-memory sorts),
//! * hash computations (Hashed Sort's partitioning phase),
//! * rows moved between operators.
//!
//! [`CostWeights`] converts a [`CostSnapshot`] into *modeled milliseconds*
//! with constants calibrated to commodity hardware of the paper's era
//! (sequential ~100 MB/s disk, ~10 ns per comparison). The benchmark harness
//! reports modeled time next to measured wall time; DESIGN.md §2 documents
//! this substitution.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters for the segment-store pool's spill traffic.
///
/// Pool I/O is deliberately **not** part of [`CostTracker`]'s counters: the
/// paper's cost model prices reorder I/O (sort runs, hash buckets) but
/// assumes pipeline buffering between operators is free. The segment store
/// makes that buffering physically bounded — and the blocks it moves to keep
/// residency under the pool budget are a physical artifact of the bound,
/// not modeled work. Keeping them here preserves the invariant that the
/// modeled counters of a chain are bit-identical whether the pool is
/// bounded or not (see `wf_storage::segstore`).
#[derive(Debug, Default)]
pub struct PoolCounters {
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
}

impl PoolCounters {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` pool block reads.
    #[inline]
    pub fn read_blocks(&self, n: u64) {
        self.blocks_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` pool block writes.
    #[inline]
    pub fn write_blocks(&self, n: u64) {
        self.blocks_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Total pool blocks read back so far.
    pub fn blocks_read(&self) -> u64 {
        self.blocks_read.load(Ordering::Relaxed)
    }

    /// Total pool blocks written so far.
    pub fn blocks_written(&self) -> u64 {
        self.blocks_written.load(Ordering::Relaxed)
    }
}

/// Thread-safe accumulation of execution work. Cheap to share (`Arc`), cheap
/// to update (relaxed atomics).
#[derive(Debug, Default)]
pub struct CostTracker {
    blocks_read: AtomicU64,
    blocks_written: AtomicU64,
    comparisons: AtomicU64,
    hashes: AtomicU64,
    rows_moved: AtomicU64,
    key_encodes: AtomicU64,
}

impl CostTracker {
    /// Fresh tracker with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` block reads.
    #[inline]
    pub fn read_blocks(&self, n: u64) {
        self.blocks_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` block writes.
    #[inline]
    pub fn write_blocks(&self, n: u64) {
        self.blocks_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` key comparisons.
    #[inline]
    pub fn compare(&self, n: u64) {
        self.comparisons.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` hash computations.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn hash(&self, n: u64) {
        self.hashes.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` row movements (copies between operators/buffers).
    #[inline]
    pub fn move_rows(&self, n: u64) {
        self.rows_moved.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` normalized-key encodings (byte-comparable sort keys).
    /// Informational: the paper's cost model does not price encoding, so
    /// this counter never enters modeled time — the work shows up in wall
    /// clock and is reported for transparency.
    #[inline]
    pub fn encode_keys(&self, n: u64) {
        self.key_encodes.fetch_add(n, Ordering::Relaxed);
    }

    /// Fold a finished snapshot into this tracker — how a parallel
    /// scheduler merges its workers' private trackers back into the chain's
    /// shared one. Callers absorb workers in a fixed (shard) order so the
    /// main tracker's totals are a deterministic function of the shards,
    /// independent of thread scheduling.
    pub fn absorb(&self, s: &CostSnapshot) {
        self.read_blocks(s.blocks_read);
        self.write_blocks(s.blocks_written);
        self.compare(s.comparisons);
        self.hash(s.hashes);
        self.move_rows(s.rows_moved);
        self.encode_keys(s.key_encodes);
    }

    /// Current totals.
    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            blocks_read: self.blocks_read.load(Ordering::Relaxed),
            blocks_written: self.blocks_written.load(Ordering::Relaxed),
            comparisons: self.comparisons.load(Ordering::Relaxed),
            hashes: self.hashes.load(Ordering::Relaxed),
            rows_moved: self.rows_moved.load(Ordering::Relaxed),
            key_encodes: self.key_encodes.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.blocks_read.store(0, Ordering::Relaxed);
        self.blocks_written.store(0, Ordering::Relaxed);
        self.comparisons.store(0, Ordering::Relaxed);
        self.hashes.store(0, Ordering::Relaxed);
        self.rows_moved.store(0, Ordering::Relaxed);
        self.key_encodes.store(0, Ordering::Relaxed);
    }
}

/// An immutable view of the counters; supports differencing so callers can
/// attribute work to a phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    pub blocks_read: u64,
    pub blocks_written: u64,
    pub comparisons: u64,
    pub hashes: u64,
    pub rows_moved: u64,
    /// Normalized-key encodings (informational; zero-weighted in modeled
    /// time — see [`CostTracker::encode_keys`]).
    pub key_encodes: u64,
}

impl CostSnapshot {
    /// Total blocks transferred in either direction.
    pub fn io_blocks(&self) -> u64 {
        self.blocks_read + self.blocks_written
    }

    /// The counters the paper's cost model prices (everything except the
    /// informational `key_encodes`). Equivalence tests compare these: the
    /// byte-key and comparator sort paths must charge identical modeled
    /// work even though only the former encodes keys.
    pub fn modeled_counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.blocks_read,
            self.blocks_written,
            self.comparisons,
            self.hashes,
            self.rows_moved,
        )
    }

    /// Work performed since `earlier` (saturating).
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            blocks_read: self.blocks_read.saturating_sub(earlier.blocks_read),
            blocks_written: self.blocks_written.saturating_sub(earlier.blocks_written),
            comparisons: self.comparisons.saturating_sub(earlier.comparisons),
            hashes: self.hashes.saturating_sub(earlier.hashes),
            rows_moved: self.rows_moved.saturating_sub(earlier.rows_moved),
            key_encodes: self.key_encodes.saturating_sub(earlier.key_encodes),
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            blocks_read: self.blocks_read + other.blocks_read,
            blocks_written: self.blocks_written + other.blocks_written,
            comparisons: self.comparisons + other.comparisons,
            hashes: self.hashes + other.hashes,
            rows_moved: self.rows_moved + other.rows_moved,
            key_encodes: self.key_encodes + other.key_encodes,
        }
    }
}

/// Converts counters to modeled time. Defaults are calibrated to the paper's
/// hardware class: an 8 KiB block at ~100 MB/s sequential ≈ 80 µs; a key
/// comparison ≈ 10 ns; a hash ≈ 15 ns; a row move ≈ 20 ns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Microseconds per block read or written.
    pub us_per_block_io: f64,
    /// Nanoseconds per key comparison.
    pub ns_per_comparison: f64,
    /// Nanoseconds per hash computation.
    pub ns_per_hash: f64,
    /// Nanoseconds per row moved.
    pub ns_per_row_move: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        CostWeights {
            us_per_block_io: 80.0,
            ns_per_comparison: 10.0,
            ns_per_hash: 15.0,
            ns_per_row_move: 20.0,
        }
    }
}

impl CostWeights {
    /// Modeled execution time in milliseconds for the given work.
    pub fn modeled_ms(&self, s: &CostSnapshot) -> f64 {
        let io_us = s.io_blocks() as f64 * self.us_per_block_io;
        let cpu_ns = s.comparisons as f64 * self.ns_per_comparison
            + s.hashes as f64 * self.ns_per_hash
            + s.rows_moved as f64 * self.ns_per_row_move;
        io_us / 1_000.0 + cpu_ns / 1_000_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate() {
        let t = CostTracker::new();
        t.read_blocks(3);
        t.write_blocks(2);
        t.compare(10);
        t.hash(4);
        t.move_rows(7);
        let s = t.snapshot();
        assert_eq!(s.blocks_read, 3);
        assert_eq!(s.blocks_written, 2);
        assert_eq!(s.io_blocks(), 5);
        assert_eq!(s.comparisons, 10);
        assert_eq!(s.hashes, 4);
        assert_eq!(s.rows_moved, 7);
    }

    #[test]
    fn since_diffs_and_plus_sums() {
        let t = CostTracker::new();
        t.read_blocks(5);
        let a = t.snapshot();
        t.read_blocks(2);
        t.compare(1);
        let b = t.snapshot();
        let d = b.since(&a);
        assert_eq!(d.blocks_read, 2);
        assert_eq!(d.comparisons, 1);
        let sum = a.plus(&d);
        assert_eq!(sum.blocks_read, b.blocks_read);
    }

    #[test]
    fn reset_zeroes() {
        let t = CostTracker::new();
        t.read_blocks(5);
        t.reset();
        assert_eq!(t.snapshot(), CostSnapshot::default());
    }

    #[test]
    fn modeled_time_weighs_io_heavier_than_cpu() {
        let w = CostWeights::default();
        let io = CostSnapshot {
            blocks_read: 1000,
            ..Default::default()
        };
        let cpu = CostSnapshot {
            comparisons: 1000,
            ..Default::default()
        };
        assert!(w.modeled_ms(&io) > 1000.0 * w.modeled_ms(&cpu));
    }

    #[test]
    fn absorb_adds_every_counter() {
        let worker = CostTracker::new();
        worker.read_blocks(3);
        worker.write_blocks(2);
        worker.compare(10);
        worker.hash(4);
        worker.move_rows(7);
        worker.encode_keys(5);
        let main = CostTracker::new();
        main.compare(1);
        main.absorb(&worker.snapshot());
        let s = main.snapshot();
        assert_eq!(
            (s.blocks_read, s.blocks_written, s.comparisons, s.hashes),
            (3, 2, 11, 4)
        );
        assert_eq!((s.rows_moved, s.key_encodes), (7, 5));
    }

    #[test]
    fn tracker_is_shareable_across_threads() {
        let t = Arc::new(CostTracker::new());
        let t2 = Arc::clone(&t);
        let h = std::thread::spawn(move || {
            for _ in 0..100 {
                t2.compare(1);
            }
        });
        for _ in 0..100 {
            t.compare(1);
        }
        h.join().unwrap();
        assert_eq!(t.snapshot().comparisons, 200);
    }
}
