//! Append-only spill files with block-granular I/O accounting.
//!
//! Sorted runs (Full Sort), spilled hash buckets (Hashed Sort) and oversized
//! segment units (Segmented Sort) all live in spill files. A [`SpillFile`]
//! buffers encoded rows and writes whole blocks to a [`SpillStore`],
//! charging the shared [`CostTracker`]; a [`SpillReader`] streams them back,
//! charging reads the same way.
//!
//! Two stores are provided: [`SimStore`] (an in-memory simulated device —
//! the default for benchmarks, where only the *counts* matter) and
//! [`FileStore`] (a real temporary file, for integration tests that want to
//! exercise the OS path).

use crate::block::{blocks_for_bytes, BLOCK_SIZE};
use crate::bytebuf::ByteBuf;
use crate::codec::{decode_keyed_row, decode_row, encode_keyed_row, encode_row};
use crate::cost::{CostTracker, PoolCounters};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wf_common::{Error, Result, Row};

/// Backing device for spill data.
pub trait SpillStore: Send {
    /// Append bytes to the store.
    fn append(&mut self, data: &[u8]) -> Result<()>;
    /// Read `buf.len()` bytes starting at `offset`; short reads are errors.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize>;
    /// Total bytes stored.
    fn len(&self) -> u64;
    /// True when nothing has been written.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// In-memory simulated device.
#[derive(Debug, Default)]
pub struct SimStore {
    data: Vec<u8>,
}

impl SimStore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl SpillStore for SimStore {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.data.extend_from_slice(data);
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let start = offset as usize;
        let end = (start + buf.len()).min(self.data.len());
        if start > self.data.len() {
            return Err(Error::Execution("spill read past end".into()));
        }
        let n = end - start;
        buf[..n].copy_from_slice(&self.data[start..end]);
        Ok(n)
    }

    fn len(&self) -> u64 {
        self.data.len() as u64
    }
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A real temporary file, removed on drop.
#[derive(Debug)]
pub struct FileStore {
    file: File,
    path: PathBuf,
    len: u64,
}

impl FileStore {
    /// Create a fresh temp file under the OS temp dir.
    pub fn new() -> Result<Self> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("wfopt-spill-{}-{}.tmp", std::process::id(), n));
        let file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| Error::Execution(format!("create spill file: {e}")))?;
        Ok(FileStore { file, path, len: 0 })
    }
}

impl SpillStore for FileStore {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.file
            .seek(SeekFrom::End(0))
            .and_then(|_| self.file.write_all(data))
            .map_err(|e| Error::Execution(format!("spill write: {e}")))?;
        self.len += data.len() as u64;
        Ok(())
    }

    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        self.file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| Error::Execution(format!("spill seek: {e}")))?;
        let mut total = 0;
        while total < buf.len() {
            let n = self
                .file
                .read(&mut buf[total..])
                .map_err(|e| Error::Execution(format!("spill read: {e}")))?;
            if n == 0 {
                break;
            }
            total += n;
        }
        Ok(total)
    }

    fn len(&self) -> u64 {
        self.len
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Which store spill files should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillMedium {
    /// In-memory simulated device (default; counts are what matter).
    #[default]
    Simulated,
    /// Real temporary files.
    TempFile,
}

fn make_store(medium: SpillMedium) -> Result<Box<dyn SpillStore>> {
    Ok(match medium {
        SpillMedium::Simulated => Box::new(SimStore::new()),
        SpillMedium::TempFile => Box::new(FileStore::new()?),
    })
}

/// Where a spill file's block traffic is charged.
///
/// Reorder spills (sort runs, hash buckets) are work the paper's cost model
/// prices and charge the [`CostTracker`]; segment-store pool spills exist
/// only to bound physical residency and charge the informational
/// [`PoolCounters`] instead (see [`crate::segstore`]).
#[derive(Clone)]
pub enum IoMeter {
    /// Modeled reorder I/O.
    Model(Arc<CostTracker>),
    /// Segment-store pool traffic (never enters modeled time).
    Pool(Arc<PoolCounters>),
}

impl IoMeter {
    #[inline]
    fn read_blocks(&self, n: u64) {
        match self {
            IoMeter::Model(t) => t.read_blocks(n),
            IoMeter::Pool(p) => p.read_blocks(n),
        }
    }

    #[inline]
    fn write_blocks(&self, n: u64) {
        match self {
            IoMeter::Model(t) => t.write_blocks(n),
            IoMeter::Pool(p) => p.write_blocks(n),
        }
    }
}

/// Writer for one spill file. Rows are encoded into a block-sized buffer and
/// written out block by block; every block write is charged to the meter.
///
/// A file is either *plain* ([`Self::push`]) or *key-carrying*
/// ([`Self::push_keyed`]) — the two entry formats cannot mix. Key-carrying
/// files persist the normalized sort key next to each row so read-back never
/// re-encodes keys; their physical bytes grow by the key size, but I/O is
/// charged against **modeled bytes** (the row-codec size alone), keeping
/// block counts bit-identical to a plain file holding the same rows.
pub struct SpillFile {
    store: Box<dyn SpillStore>,
    buffer: ByteBuf,
    meter: IoMeter,
    rows: u64,
    bytes: u64,
    keyed: bool,
    /// Row-codec bytes appended (excludes keyed framing); the charging basis
    /// for key-carrying files.
    modeled_bytes: u64,
    charged_writes: u64,
}

impl SpillFile {
    /// Create a spill file on the given medium charging modeled I/O.
    pub fn create(medium: SpillMedium, tracker: Arc<CostTracker>) -> Result<Self> {
        Self::create_metered(medium, IoMeter::Model(tracker))
    }

    /// Create a spill file charging the given meter.
    pub fn create_metered(medium: SpillMedium, meter: IoMeter) -> Result<Self> {
        Ok(SpillFile {
            store: make_store(medium)?,
            buffer: ByteBuf::with_capacity(2 * BLOCK_SIZE),
            meter,
            rows: 0,
            bytes: 0,
            keyed: false,
            modeled_bytes: 0,
            charged_writes: 0,
        })
    }

    /// Append one row.
    pub fn push(&mut self, row: &Row) -> Result<()> {
        debug_assert!(!self.keyed, "plain push into a key-carrying spill file");
        encode_row(row, &mut self.buffer);
        self.rows += 1;
        self.modeled_bytes += row.encoded_len() as u64;
        while self.buffer.len() >= BLOCK_SIZE {
            let block = self.buffer.split_to(BLOCK_SIZE);
            self.store.append(&block)?;
            self.meter.write_blocks(1);
            self.bytes += BLOCK_SIZE as u64;
        }
        Ok(())
    }

    /// Append one row with its normalized sort key (or `None` when the row
    /// has no byte-comparable encoding). Switches the file to the
    /// key-carrying entry format; read it back with
    /// [`SpillReader::next_keyed`]. Writes are charged as the *modeled*
    /// (row-codec) bytes cross block boundaries, so the total block count is
    /// identical to pushing the same rows without keys.
    pub fn push_keyed(&mut self, key: Option<&[u8]>, row: &Row) -> Result<()> {
        debug_assert!(
            self.keyed || self.rows == 0,
            "keyed push into a plain spill file"
        );
        self.keyed = true;
        encode_keyed_row(key, row, &mut self.buffer);
        self.rows += 1;
        self.modeled_bytes += row.encoded_len() as u64;
        while self.buffer.len() >= BLOCK_SIZE {
            let block = self.buffer.split_to(BLOCK_SIZE);
            self.store.append(&block)?;
            self.bytes += BLOCK_SIZE as u64;
        }
        let due = self.modeled_bytes / BLOCK_SIZE as u64;
        if due > self.charged_writes {
            self.meter.write_blocks(due - self.charged_writes);
            self.charged_writes = due;
        }
        Ok(())
    }

    /// Number of rows appended so far.
    pub fn row_count(&self) -> u64 {
        self.rows
    }

    /// Finish writing, flushing the trailing partial block, and return a
    /// reader positioned at the start.
    pub fn into_reader(mut self) -> Result<SpillReader> {
        if !self.buffer.is_empty() {
            self.store.append(self.buffer.as_slice())?;
            if !self.keyed {
                self.meter.write_blocks(1);
            }
            self.bytes += self.buffer.len() as u64;
            self.buffer.clear();
        }
        if self.keyed {
            // Settle the trailing partial modeled block.
            let due = blocks_for_bytes(self.modeled_bytes as usize);
            if due > self.charged_writes {
                self.meter.write_blocks(due - self.charged_writes);
                self.charged_writes = due;
            }
        }
        Ok(SpillReader {
            store: self.store,
            meter: self.meter,
            offset: 0,
            total: self.bytes,
            pending: ByteBuf::new(),
            remaining_rows: self.rows,
            keyed: self.keyed,
            modeled_total: self.modeled_bytes,
            modeled_consumed: 0,
            charged_reads: 0,
        })
    }
}

/// Streaming reader over a finished spill file.
pub struct SpillReader {
    store: Box<dyn SpillStore>,
    meter: IoMeter,
    offset: u64,
    total: u64,
    pending: ByteBuf,
    remaining_rows: u64,
    keyed: bool,
    modeled_total: u64,
    modeled_consumed: u64,
    charged_reads: u64,
}

impl SpillReader {
    /// Rows left to read.
    pub fn remaining_rows(&self) -> u64 {
        self.remaining_rows
    }

    /// Read the next row, or `None` at end of file. On key-carrying files
    /// the persisted key is decoded and dropped.
    pub fn next_row(&mut self) -> Result<Option<Row>> {
        if self.keyed {
            return Ok(self.next_keyed()?.map(|(_, row)| row));
        }
        if self.remaining_rows == 0 {
            return Ok(None);
        }
        loop {
            // Try to decode from what we have; top up a block at a time.
            if let Some(row) = self.try_decode()? {
                self.remaining_rows -= 1;
                return Ok(Some(row));
            }
            self.fill_pending(true)?;
        }
    }

    /// Read the next row together with its persisted normalized key. Valid
    /// on any file; plain files yield `None` keys. On key-carrying files
    /// reads are charged as modeled (row-codec) byte consumption crosses
    /// block boundaries — total reads equal total writes, exactly as on a
    /// plain file holding the same rows.
    pub fn next_keyed(&mut self) -> Result<Option<(Option<Vec<u8>>, Row)>> {
        if !self.keyed {
            return Ok(self.next_row()?.map(|row| (None, row)));
        }
        if self.remaining_rows == 0 {
            return Ok(None);
        }
        loop {
            if let Some((key, row)) = self.try_decode_keyed()? {
                self.remaining_rows -= 1;
                self.modeled_consumed += row.encoded_len() as u64;
                let due = if self.remaining_rows == 0 {
                    // Settle the trailing partial modeled block.
                    blocks_for_bytes(self.modeled_total as usize)
                } else {
                    self.modeled_consumed / BLOCK_SIZE as u64
                };
                if due > self.charged_reads {
                    self.meter.read_blocks(due - self.charged_reads);
                    self.charged_reads = due;
                }
                return Ok(Some((key, row)));
            }
            self.fill_pending(false)?;
        }
    }

    /// Top up the pending buffer with one physical block, optionally
    /// charging the meter (key-carrying files charge by modeled bytes in
    /// the decode loop instead).
    fn fill_pending(&mut self, charge: bool) -> Result<()> {
        if self.offset >= self.total {
            return Err(Error::Execution(
                "spill file ended with rows still expected".into(),
            ));
        }
        let want = BLOCK_SIZE.min((self.total - self.offset) as usize);
        let mut block = vec![0u8; want];
        let n = self.store.read_at(self.offset, &mut block)?;
        if n == 0 {
            return Err(Error::Execution("short read from spill store".into()));
        }
        self.offset += n as u64;
        if charge {
            self.meter.read_blocks(1);
        }
        self.pending.extend_from_slice(&block[..n]);
        Ok(())
    }

    /// Attempt to decode a full row from the pending buffer without
    /// consuming on failure.
    fn try_decode(&mut self) -> Result<Option<Row>> {
        if self.pending.len() < 2 {
            return Ok(None);
        }
        // Peek: decode against a cursor; only commit if a full row decodes.
        let mut cursor: &[u8] = self.pending.as_slice();
        match decode_row(&mut cursor) {
            Ok(row) => {
                let used = self.pending.len() - cursor.len();
                self.pending.advance(used);
                Ok(Some(row))
            }
            Err(_) => Ok(None), // presumed truncated; caller tops up
        }
    }

    /// Keyed-entry twin of [`Self::try_decode`].
    fn try_decode_keyed(&mut self) -> Result<Option<(Option<Vec<u8>>, Row)>> {
        if self.pending.len() < 2 {
            return Ok(None);
        }
        let mut cursor: &[u8] = self.pending.as_slice();
        match decode_keyed_row(&mut cursor) {
            Ok(entry) => {
                let used = self.pending.len() - cursor.len();
                self.pending.advance(used);
                Ok(Some(entry))
            }
            Err(_) => Ok(None), // presumed truncated; caller tops up
        }
    }

    /// Drain into a vector (reads and charges everything).
    pub fn read_all(&mut self) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(self.remaining_rows as usize);
        while let Some(r) = self.next_row()? {
            out.push(r);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::row;

    fn spill_round_trip(medium: SpillMedium, n: usize) {
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::create(medium, Arc::clone(&tracker)).unwrap();
        let rows: Vec<Row> = (0..n)
            .map(|i| row![i as i64, format!("value-{i}"), (i as f64) * 0.5])
            .collect();
        for r in &rows {
            f.push(r).unwrap();
        }
        assert_eq!(f.row_count(), n as u64);
        let mut reader = f.into_reader().unwrap();
        let back = reader.read_all().unwrap();
        assert_eq!(back, rows);
        assert!(reader.next_row().unwrap().is_none());

        let s = tracker.snapshot();
        let bytes: usize = rows.iter().map(|r| r.encoded_len()).sum();
        let expected_blocks = crate::block::blocks_for_bytes(bytes);
        assert_eq!(
            s.blocks_written,
            expected_blocks.max(if n > 0 { 1 } else { 0 })
        );
        assert_eq!(s.blocks_read, s.blocks_written);
    }

    #[test]
    fn sim_store_round_trip_small() {
        spill_round_trip(SpillMedium::Simulated, 10);
    }

    #[test]
    fn sim_store_round_trip_multi_block() {
        spill_round_trip(SpillMedium::Simulated, 2000);
    }

    #[test]
    fn file_store_round_trip() {
        spill_round_trip(SpillMedium::TempFile, 500);
    }

    #[test]
    fn empty_spill_reads_nothing() {
        let tracker = Arc::new(CostTracker::new());
        let f = SpillFile::create(SpillMedium::Simulated, Arc::clone(&tracker)).unwrap();
        let mut r = f.into_reader().unwrap();
        assert!(r.next_row().unwrap().is_none());
        assert_eq!(tracker.snapshot().io_blocks(), 0);
    }

    #[test]
    fn rows_spanning_block_boundaries() {
        // A long string forces rows to straddle block boundaries.
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::create(SpillMedium::Simulated, Arc::clone(&tracker)).unwrap();
        let big = "x".repeat(BLOCK_SIZE / 2 + 100);
        let rows: Vec<Row> = (0..8).map(|i| row![i as i64, big.clone()]).collect();
        for r in &rows {
            f.push(r).unwrap();
        }
        let back = f.into_reader().unwrap().read_all().unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn keyed_spill_round_trips_keys_and_rows() {
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::create(SpillMedium::Simulated, Arc::clone(&tracker)).unwrap();
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64, format!("r{i}")]).collect();
        for (i, r) in rows.iter().enumerate() {
            let key = (i as u64).to_be_bytes();
            let k = if i % 7 == 0 { None } else { Some(&key[..]) };
            f.push_keyed(k, r).unwrap();
        }
        let mut reader = f.into_reader().unwrap();
        for (i, r) in rows.iter().enumerate() {
            let (key, back) = reader.next_keyed().unwrap().unwrap();
            assert_eq!(&back, r);
            if i % 7 == 0 {
                assert_eq!(key, None);
            } else {
                assert_eq!(key.as_deref(), Some(&(i as u64).to_be_bytes()[..]));
            }
        }
        assert!(reader.next_keyed().unwrap().is_none());
    }

    #[test]
    fn keyed_spill_charges_modeled_blocks_exactly_like_plain() {
        // Keys inflate the physical file but must not change charged I/O.
        let rows: Vec<Row> = (0..3000)
            .map(|i| row![i as i64, format!("value-{i}"), (i as f64) * 0.5])
            .collect();
        let plain = Arc::new(CostTracker::new());
        let mut pf = SpillFile::create(SpillMedium::Simulated, Arc::clone(&plain)).unwrap();
        for r in &rows {
            pf.push(r).unwrap();
        }
        pf.into_reader().unwrap().read_all().unwrap();

        let keyed = Arc::new(CostTracker::new());
        let mut kf = SpillFile::create(SpillMedium::Simulated, Arc::clone(&keyed)).unwrap();
        let wide_key = [0xABu8; 32];
        for r in &rows {
            kf.push_keyed(Some(&wide_key), r).unwrap();
        }
        let mut reader = kf.into_reader().unwrap();
        while reader.next_keyed().unwrap().is_some() {}

        assert_eq!(
            plain.snapshot().modeled_counters(),
            keyed.snapshot().modeled_counters()
        );
        let s = keyed.snapshot();
        let bytes: usize = rows.iter().map(|r| r.encoded_len()).sum();
        assert_eq!(s.blocks_written, crate::block::blocks_for_bytes(bytes));
        assert_eq!(s.blocks_read, s.blocks_written);
    }

    #[test]
    fn keyed_spill_via_next_row_drops_keys() {
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::create(SpillMedium::Simulated, Arc::clone(&tracker)).unwrap();
        let rows = vec![row![1, "a"], row![2, "b"]];
        for r in &rows {
            f.push_keyed(Some(b"key"), r).unwrap();
        }
        let mut reader = f.into_reader().unwrap();
        assert_eq!(reader.next_row().unwrap().as_ref(), Some(&rows[0]));
        assert_eq!(reader.next_row().unwrap().as_ref(), Some(&rows[1]));
        assert!(reader.next_row().unwrap().is_none());
        let s = tracker.snapshot();
        assert_eq!(s.blocks_written, 1);
        assert_eq!(s.blocks_read, 1);
    }

    #[test]
    fn file_store_removes_file_on_drop() {
        let store = FileStore::new().unwrap();
        let path = store.path.clone();
        assert!(path.exists());
        drop(store);
        assert!(!path.exists());
    }
}
