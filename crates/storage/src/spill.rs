//! Append-only spill files with block-granular I/O accounting.
//!
//! Sorted runs (Full Sort), spilled hash buckets (Hashed Sort) and oversized
//! segment units (Segmented Sort) all live in spill files. A [`SpillFile`]
//! buffers encoded rows and writes whole logical blocks to a pluggable
//! [`SpillBackend`](crate::backend::SpillBackend), charging the shared
//! [`CostTracker`]; a [`SpillReader`] streams them back, charging reads the
//! same way.
//!
//! The charging layer lives entirely here and is expressed in *logical*
//! uncompressed [`BLOCK_SIZE`] blocks. Everything physical — which medium
//! holds the bytes ([`crate::backend`]), whether blocks are compressed at
//! rest ([`crate::codec::compress_block`]), and whether reads are served by
//! the async read-ahead pipeline ([`crate::prefetch`]) — happens below this
//! line and therefore cannot change modeled or pool counters, only wall
//! time.

use crate::backend::{BackendFile, SpillConfig};
use crate::block::{blocks_for_bytes, BLOCK_SIZE};
use crate::bytebuf::ByteBuf;
use crate::codec::{
    compress_block, decode_keyed_row, decode_row, decompress_block, encode_keyed_row, encode_row,
};
use crate::cost::{CostTracker, PoolCounters};
use crate::prefetch::Prefetcher;
use std::sync::Arc;
use wf_common::{Error, Result, Row};

/// Which store spill files should use — the legacy two-way selector, kept
/// for call sites that predate [`SpillConfig`]. `Simulated` maps to the
/// in-memory backend, `TempFile` to real local files; neither compresses
/// nor prefetches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillMedium {
    /// In-memory simulated device (default; counts are what matter).
    #[default]
    Simulated,
    /// Real temporary files.
    TempFile,
}

impl SpillMedium {
    /// The equivalent full [`SpillConfig`] (fresh backend, no compression,
    /// no read-ahead).
    pub fn config(self) -> SpillConfig {
        match self {
            SpillMedium::Simulated => SpillConfig::mem(),
            SpillMedium::TempFile => SpillConfig::file(),
        }
    }
}

/// Where a spill file's block traffic is charged.
///
/// Reorder spills (sort runs, hash buckets) are work the paper's cost model
/// prices and charge the [`CostTracker`]; segment-store pool spills exist
/// only to bound physical residency and charge the informational
/// [`PoolCounters`] instead (see [`crate::segstore`]).
#[derive(Clone)]
pub enum IoMeter {
    /// Modeled reorder I/O.
    Model(Arc<CostTracker>),
    /// Segment-store pool traffic (never enters modeled time).
    Pool(Arc<PoolCounters>),
}

impl IoMeter {
    #[inline]
    fn read_blocks(&self, n: u64) {
        match self {
            IoMeter::Model(t) => t.read_blocks(n),
            IoMeter::Pool(p) => p.read_blocks(n),
        }
    }

    #[inline]
    fn write_blocks(&self, n: u64) {
        match self {
            IoMeter::Model(t) => t.write_blocks(n),
            IoMeter::Pool(p) => p.write_blocks(n),
        }
    }
}

/// Writer for one spill file. Rows are encoded into a block-sized buffer and
/// written out block by block; every logical block write is charged to the
/// meter (compression may shrink the physical payload, never the charge).
///
/// A file is either *plain* ([`Self::push`]) or *key-carrying*
/// ([`Self::push_keyed`]) — the two entry formats cannot mix. Key-carrying
/// files persist the normalized sort key next to each row so read-back never
/// re-encodes keys; their physical bytes grow by the key size, but I/O is
/// charged against **modeled bytes** (the row-codec size alone), keeping
/// block counts bit-identical to a plain file holding the same rows.
pub struct SpillFile {
    file: Box<dyn BackendFile>,
    buffer: ByteBuf,
    meter: IoMeter,
    rows: u64,
    /// Logical (uncompressed) bytes flushed so far.
    bytes: u64,
    keyed: bool,
    /// Row-codec bytes appended (excludes keyed framing); the charging basis
    /// for key-carrying files.
    modeled_bytes: u64,
    charged_writes: u64,
    /// Compress blocks at rest (already negotiated against the backend).
    compress: bool,
    /// Read-ahead depth the reader should use.
    prefetch: usize,
}

impl SpillFile {
    /// Create a spill file on the given medium charging modeled I/O.
    pub fn create(medium: SpillMedium, tracker: Arc<CostTracker>) -> Result<Self> {
        Self::create_metered(medium, IoMeter::Model(tracker))
    }

    /// Create a spill file on the given medium charging the given meter.
    pub fn create_metered(medium: SpillMedium, meter: IoMeter) -> Result<Self> {
        Self::with_config(&medium.config(), meter)
    }

    /// Create a spill file on a configured backend, with the config's
    /// compression (post-negotiation) and read-ahead settings.
    pub fn with_config(cfg: &SpillConfig, meter: IoMeter) -> Result<Self> {
        Ok(SpillFile {
            file: cfg.backend.open()?,
            buffer: ByteBuf::with_capacity(2 * BLOCK_SIZE),
            meter,
            rows: 0,
            bytes: 0,
            keyed: false,
            modeled_bytes: 0,
            charged_writes: 0,
            compress: cfg.effective_compress(),
            prefetch: cfg.prefetch_blocks,
        })
    }

    /// Hand one logical block to the backend, compressing at rest when
    /// negotiated. Charging happens at the call sites, in logical blocks.
    fn write_physical(&mut self, block: &[u8]) -> Result<()> {
        if self.compress {
            self.file.append_block(&compress_block(block))
        } else {
            self.file.append_block(block)
        }
    }

    /// Append one row.
    pub fn push(&mut self, row: &Row) -> Result<()> {
        debug_assert!(!self.keyed, "plain push into a key-carrying spill file");
        encode_row(row, &mut self.buffer);
        self.rows += 1;
        self.modeled_bytes += row.encoded_len() as u64;
        while self.buffer.len() >= BLOCK_SIZE {
            let block = self.buffer.split_to(BLOCK_SIZE);
            self.write_physical(&block)?;
            self.meter.write_blocks(1);
            self.bytes += BLOCK_SIZE as u64;
        }
        Ok(())
    }

    /// Append one row with its normalized sort key (or `None` when the row
    /// has no byte-comparable encoding). Switches the file to the
    /// key-carrying entry format; read it back with
    /// [`SpillReader::next_keyed`]. Writes are charged as the *modeled*
    /// (row-codec) bytes cross block boundaries, so the total block count is
    /// identical to pushing the same rows without keys.
    pub fn push_keyed(&mut self, key: Option<&[u8]>, row: &Row) -> Result<()> {
        debug_assert!(
            self.keyed || self.rows == 0,
            "keyed push into a plain spill file"
        );
        self.keyed = true;
        encode_keyed_row(key, row, &mut self.buffer);
        self.rows += 1;
        self.modeled_bytes += row.encoded_len() as u64;
        while self.buffer.len() >= BLOCK_SIZE {
            let block = self.buffer.split_to(BLOCK_SIZE);
            self.write_physical(&block)?;
            self.bytes += BLOCK_SIZE as u64;
        }
        let due = self.modeled_bytes / BLOCK_SIZE as u64;
        if due > self.charged_writes {
            self.meter.write_blocks(due - self.charged_writes);
            self.charged_writes = due;
        }
        Ok(())
    }

    /// Number of rows appended so far.
    pub fn row_count(&self) -> u64 {
        self.rows
    }

    /// Finish writing, flushing the trailing partial block, and return a
    /// reader positioned at the start. The reader reads back through the
    /// same backend handle — dropping it (including on the abort paths:
    /// cancel, timeout, error unwind) deletes the underlying storage.
    pub fn into_reader(mut self) -> Result<SpillReader> {
        if !self.buffer.is_empty() {
            let block = self.buffer.split_to(self.buffer.len());
            self.write_physical(&block)?;
            if !self.keyed {
                self.meter.write_blocks(1);
            }
            self.bytes += block.len() as u64;
        }
        if self.keyed {
            // Settle the trailing partial modeled block.
            let due = blocks_for_bytes(self.modeled_bytes as usize);
            if due > self.charged_writes {
                self.meter.write_blocks(due - self.charged_writes);
                self.charged_writes = due;
            }
        }
        let blocks = self.file.block_count();
        // Read-ahead only pays off with something to read ahead *to*; a
        // single-block file is served directly, without spinning up threads.
        let source = if self.prefetch > 0 && blocks > 1 {
            let file: Arc<dyn BackendFile> = Arc::from(self.file);
            let counters = Arc::clone(file.counters());
            BlockSource::Prefetch(Prefetcher::new(
                file,
                blocks,
                self.prefetch,
                self.compress,
                counters,
            ))
        } else {
            BlockSource::Direct {
                file: self.file,
                next: 0,
                decompress: self.compress,
            }
        };
        Ok(SpillReader {
            source,
            meter: self.meter,
            offset: 0,
            total: self.bytes,
            pending: ByteBuf::new(),
            remaining_rows: self.rows,
            keyed: self.keyed,
            modeled_total: self.modeled_bytes,
            modeled_consumed: 0,
            charged_reads: 0,
        })
    }
}

/// How a reader obtains the next decompressed logical block: a synchronous
/// cold read per block, or the async read-ahead pipeline.
enum BlockSource {
    Direct {
        file: Box<dyn BackendFile>,
        next: u64,
        decompress: bool,
    },
    Prefetch(Prefetcher),
}

impl BlockSource {
    fn next_block(&mut self) -> Result<Vec<u8>> {
        match self {
            BlockSource::Direct {
                file,
                next,
                decompress,
            } => {
                let payload = file.read_block(*next)?;
                *next += 1;
                if *decompress {
                    decompress_block(&payload)
                } else {
                    Ok(payload)
                }
            }
            BlockSource::Prefetch(pf) => pf.next_block(),
        }
    }
}

/// Streaming reader over a finished spill file. Owns the backend handle;
/// drop deletes the underlying storage.
pub struct SpillReader {
    source: BlockSource,
    meter: IoMeter,
    /// Logical bytes consumed from the backend so far.
    offset: u64,
    /// Total logical bytes in the file.
    total: u64,
    pending: ByteBuf,
    remaining_rows: u64,
    keyed: bool,
    modeled_total: u64,
    modeled_consumed: u64,
    charged_reads: u64,
}

impl SpillReader {
    /// Rows left to read.
    pub fn remaining_rows(&self) -> u64 {
        self.remaining_rows
    }

    /// Read the next row, or `None` at end of file. On key-carrying files
    /// the persisted key is decoded and dropped.
    pub fn next_row(&mut self) -> Result<Option<Row>> {
        if self.keyed {
            return Ok(self.next_keyed()?.map(|(_, row)| row));
        }
        if self.remaining_rows == 0 {
            return Ok(None);
        }
        loop {
            // Try to decode from what we have; top up a block at a time.
            if let Some(row) = self.try_decode()? {
                self.remaining_rows -= 1;
                return Ok(Some(row));
            }
            self.fill_pending(true)?;
        }
    }

    /// Read the next row together with its persisted normalized key. Valid
    /// on any file; plain files yield `None` keys. On key-carrying files
    /// reads are charged as modeled (row-codec) byte consumption crosses
    /// block boundaries — total reads equal total writes, exactly as on a
    /// plain file holding the same rows.
    pub fn next_keyed(&mut self) -> Result<Option<(Option<Vec<u8>>, Row)>> {
        if !self.keyed {
            return Ok(self.next_row()?.map(|row| (None, row)));
        }
        if self.remaining_rows == 0 {
            return Ok(None);
        }
        loop {
            if let Some((key, row)) = self.try_decode_keyed()? {
                self.remaining_rows -= 1;
                self.modeled_consumed += row.encoded_len() as u64;
                let due = if self.remaining_rows == 0 {
                    // Settle the trailing partial modeled block.
                    blocks_for_bytes(self.modeled_total as usize)
                } else {
                    self.modeled_consumed / BLOCK_SIZE as u64
                };
                if due > self.charged_reads {
                    self.meter.read_blocks(due - self.charged_reads);
                    self.charged_reads = due;
                }
                return Ok(Some((key, row)));
            }
            self.fill_pending(false)?;
        }
    }

    /// Top up the pending buffer with one logical block, optionally
    /// charging the meter (key-carrying files charge by modeled bytes in
    /// the decode loop instead). Charging happens here — at consumption —
    /// whether the block came from a cold read or was already prefetched,
    /// which is what keeps counters identical across read pipelines.
    fn fill_pending(&mut self, charge: bool) -> Result<()> {
        if self.offset >= self.total {
            return Err(Error::Execution(
                "spill file ended with rows still expected".into(),
            ));
        }
        let block = self.source.next_block()?;
        if block.is_empty() {
            return Err(Error::Execution("short read from spill store".into()));
        }
        self.offset += block.len() as u64;
        if charge {
            self.meter.read_blocks(1);
        }
        self.pending.extend_from_slice(&block);
        Ok(())
    }

    /// Attempt to decode a full row from the pending buffer without
    /// consuming on failure.
    fn try_decode(&mut self) -> Result<Option<Row>> {
        if self.pending.len() < 2 {
            return Ok(None);
        }
        // Peek: decode against a cursor; only commit if a full row decodes.
        let mut cursor: &[u8] = self.pending.as_slice();
        match decode_row(&mut cursor) {
            Ok(row) => {
                let used = self.pending.len() - cursor.len();
                self.pending.advance(used);
                Ok(Some(row))
            }
            Err(_) => Ok(None), // presumed truncated; caller tops up
        }
    }

    /// Keyed-entry twin of [`Self::try_decode`].
    fn try_decode_keyed(&mut self) -> Result<Option<(Option<Vec<u8>>, Row)>> {
        if self.pending.len() < 2 {
            return Ok(None);
        }
        let mut cursor: &[u8] = self.pending.as_slice();
        match decode_keyed_row(&mut cursor) {
            Ok(entry) => {
                let used = self.pending.len() - cursor.len();
                self.pending.advance(used);
                Ok(Some(entry))
            }
            Err(_) => Ok(None), // presumed truncated; caller tops up
        }
    }

    /// Drain into a vector (reads and charges everything).
    pub fn read_all(&mut self) -> Result<Vec<Row>> {
        let mut out = Vec::with_capacity(self.remaining_rows as usize);
        while let Some(r) = self.next_row()? {
            out.push(r);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{LocalFileBackend, ObjectStoreConfig, SpillBackendKind};
    use wf_common::row;

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| row![i as i64, format!("value-{i}"), (i as f64) * 0.5])
            .collect()
    }

    fn spill_round_trip_cfg(cfg: &SpillConfig, n: usize) {
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::with_config(cfg, IoMeter::Model(Arc::clone(&tracker))).unwrap();
        let rows = sample_rows(n);
        for r in &rows {
            f.push(r).unwrap();
        }
        assert_eq!(f.row_count(), n as u64);
        let mut reader = f.into_reader().unwrap();
        let back = reader.read_all().unwrap();
        assert_eq!(back, rows);
        assert!(reader.next_row().unwrap().is_none());

        let s = tracker.snapshot();
        let bytes: usize = rows.iter().map(|r| r.encoded_len()).sum();
        let expected_blocks = crate::block::blocks_for_bytes(bytes);
        assert_eq!(
            s.blocks_written,
            expected_blocks.max(if n > 0 { 1 } else { 0 })
        );
        assert_eq!(s.blocks_read, s.blocks_written);
    }

    #[test]
    fn sim_store_round_trip_small() {
        spill_round_trip_cfg(&SpillConfig::mem(), 10);
    }

    #[test]
    fn sim_store_round_trip_multi_block() {
        spill_round_trip_cfg(&SpillConfig::mem(), 2000);
    }

    #[test]
    fn file_store_round_trip() {
        spill_round_trip_cfg(&SpillConfig::file(), 500);
    }

    #[test]
    fn every_backend_compression_prefetch_combo_round_trips_identically() {
        // The tentpole invariant at its smallest: same rows, same charged
        // blocks, regardless of backend, compression, or read-ahead.
        for kind in [
            SpillBackendKind::Mem,
            SpillBackendKind::File,
            SpillBackendKind::ObjectStore(ObjectStoreConfig::default()),
        ] {
            for compress in [false, true] {
                for prefetch in [0usize, 2] {
                    let cfg = SpillConfig::of_kind(kind)
                        .with_compress(compress)
                        .with_prefetch(prefetch);
                    spill_round_trip_cfg(&cfg, 1200);
                }
            }
        }
    }

    #[test]
    fn compressed_file_shrinks_physical_bytes_but_not_charges() {
        let cfg = SpillConfig::file().with_compress(true);
        assert!(cfg.effective_compress());
        spill_round_trip_cfg(&cfg, 3000);
        let s = cfg.stats();
        assert!(s.put_requests > 1);
        // "value-{i}" rows are repetitive; at-rest bytes must shrink well
        // below the logical volume the meter charged for.
        assert!(s.bytes_written < s.put_requests * BLOCK_SIZE as u64 / 2);
    }

    #[test]
    fn empty_spill_reads_nothing() {
        let tracker = Arc::new(CostTracker::new());
        let f = SpillFile::create(SpillMedium::Simulated, Arc::clone(&tracker)).unwrap();
        let mut r = f.into_reader().unwrap();
        assert!(r.next_row().unwrap().is_none());
        assert_eq!(tracker.snapshot().io_blocks(), 0);
    }

    #[test]
    fn rows_spanning_block_boundaries() {
        // A long string forces rows to straddle block boundaries.
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::create(SpillMedium::Simulated, Arc::clone(&tracker)).unwrap();
        let big = "x".repeat(BLOCK_SIZE / 2 + 100);
        let rows: Vec<Row> = (0..8).map(|i| row![i as i64, big.clone()]).collect();
        for r in &rows {
            f.push(r).unwrap();
        }
        let back = f.into_reader().unwrap().read_all().unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn keyed_spill_round_trips_keys_and_rows() {
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::create(SpillMedium::Simulated, Arc::clone(&tracker)).unwrap();
        let rows: Vec<Row> = (0..100).map(|i| row![i as i64, format!("r{i}")]).collect();
        for (i, r) in rows.iter().enumerate() {
            let key = (i as u64).to_be_bytes();
            let k = if i % 7 == 0 { None } else { Some(&key[..]) };
            f.push_keyed(k, r).unwrap();
        }
        let mut reader = f.into_reader().unwrap();
        for (i, r) in rows.iter().enumerate() {
            let (key, back) = reader.next_keyed().unwrap().unwrap();
            assert_eq!(&back, r);
            if i % 7 == 0 {
                assert_eq!(key, None);
            } else {
                assert_eq!(key.as_deref(), Some(&(i as u64).to_be_bytes()[..]));
            }
        }
        assert!(reader.next_keyed().unwrap().is_none());
    }

    #[test]
    fn keyed_spill_charges_modeled_blocks_exactly_like_plain() {
        // Keys inflate the physical file but must not change charged I/O.
        let rows = sample_rows(3000);
        let plain = Arc::new(CostTracker::new());
        let mut pf = SpillFile::create(SpillMedium::Simulated, Arc::clone(&plain)).unwrap();
        for r in &rows {
            pf.push(r).unwrap();
        }
        pf.into_reader().unwrap().read_all().unwrap();

        let keyed = Arc::new(CostTracker::new());
        let mut kf = SpillFile::create(SpillMedium::Simulated, Arc::clone(&keyed)).unwrap();
        let wide_key = [0xABu8; 32];
        for r in &rows {
            kf.push_keyed(Some(&wide_key), r).unwrap();
        }
        let mut reader = kf.into_reader().unwrap();
        while reader.next_keyed().unwrap().is_some() {}

        assert_eq!(
            plain.snapshot().modeled_counters(),
            keyed.snapshot().modeled_counters()
        );
        let s = keyed.snapshot();
        let bytes: usize = rows.iter().map(|r| r.encoded_len()).sum();
        assert_eq!(s.blocks_written, crate::block::blocks_for_bytes(bytes));
        assert_eq!(s.blocks_read, s.blocks_written);
    }

    #[test]
    fn keyed_spill_via_next_row_drops_keys() {
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::create(SpillMedium::Simulated, Arc::clone(&tracker)).unwrap();
        let rows = vec![row![1, "a"], row![2, "b"]];
        for r in &rows {
            f.push_keyed(Some(b"key"), r).unwrap();
        }
        let mut reader = f.into_reader().unwrap();
        assert_eq!(reader.next_row().unwrap().as_ref(), Some(&rows[0]));
        assert_eq!(reader.next_row().unwrap().as_ref(), Some(&rows[1]));
        assert!(reader.next_row().unwrap().is_none());
        let s = tracker.snapshot();
        assert_eq!(s.blocks_written, 1);
        assert_eq!(s.blocks_read, 1);
    }

    fn temp_spill_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("wfopt-spilltest-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spill_file_is_removed_when_reader_drops() {
        let dir = temp_spill_dir("reader-drop");
        let cfg = SpillConfig {
            backend: LocalFileBackend::in_dir(dir.clone()),
            compress: false,
            prefetch_blocks: 0,
        };
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::with_config(&cfg, IoMeter::Model(tracker)).unwrap();
        for r in sample_rows(1000) {
            f.push(&r).unwrap();
        }
        let mut reader = f.into_reader().unwrap();
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        // Simulate an aborted query: drop mid-stream, before EOF.
        reader.next_row().unwrap().unwrap();
        drop(reader);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_file_is_removed_when_prefetching_reader_drops() {
        let dir = temp_spill_dir("prefetch-drop");
        let cfg = SpillConfig {
            backend: LocalFileBackend::in_dir(dir.clone()),
            compress: true,
            prefetch_blocks: 2,
        };
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::with_config(&cfg, IoMeter::Model(tracker)).unwrap();
        for r in sample_rows(2000) {
            f.push(&r).unwrap();
        }
        let mut reader = f.into_reader().unwrap();
        reader.next_row().unwrap().unwrap();
        drop(reader); // joins the prefetch workers, then deletes the file
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_drop_before_reader_deletes_file() {
        let dir = temp_spill_dir("writer-drop");
        let cfg = SpillConfig {
            backend: LocalFileBackend::in_dir(dir.clone()),
            compress: false,
            prefetch_blocks: 0,
        };
        let tracker = Arc::new(CostTracker::new());
        let mut f = SpillFile::with_config(&cfg, IoMeter::Model(tracker)).unwrap();
        for r in sample_rows(100) {
            f.push(&r).unwrap();
        }
        drop(f); // aborted before into_reader
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
