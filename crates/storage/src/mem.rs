//! The sort-memory ledger — the paper's `M`.
//!
//! Each reordering operation is allocated a fixed number of blocks of
//! operating memory ("unit reorder memory" in §6.1). Operators charge bytes
//! against the ledger while buffering rows and release them when rows are
//! emitted or spilled; the ledger answers "does this still fit in `M`?".

use crate::block::BLOCK_SIZE;
use wf_common::{Error, Result};

/// A byte budget expressed in blocks. Not thread-safe by design: each
/// operator owns its ledger (parallel execution gives each worker its own).
#[derive(Debug, Clone)]
pub struct MemoryLedger {
    budget: usize,
    used: usize,
    high_water: usize,
}

impl MemoryLedger {
    /// A ledger with a budget of `blocks` blocks. At least one block is
    /// required — an external sort cannot make progress with zero memory.
    pub fn with_blocks(blocks: u64) -> Result<Self> {
        if blocks == 0 {
            return Err(Error::Resource(
                "sort memory must be at least one block".into(),
            ));
        }
        Ok(MemoryLedger {
            budget: blocks as usize * BLOCK_SIZE,
            used: 0,
            high_water: 0,
        })
    }

    /// Budget in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Budget in blocks.
    pub fn budget_blocks(&self) -> u64 {
        (self.budget / BLOCK_SIZE) as u64
    }

    /// Bytes currently charged.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Maximum bytes ever charged simultaneously.
    pub fn high_water_bytes(&self) -> usize {
        self.high_water
    }

    /// True if `bytes` more would still fit.
    pub fn fits(&self, bytes: usize) -> bool {
        self.used + bytes <= self.budget
    }

    /// Charge `bytes` unconditionally (caller decided to exceed; used when a
    /// single row is larger than the whole budget — it must still be
    /// buffered somewhere before spilling).
    pub fn charge(&mut self, bytes: usize) {
        self.used += bytes;
        self.high_water = self.high_water.max(self.used);
    }

    /// Charge `bytes` if they fit; returns whether the charge happened.
    pub fn try_charge(&mut self, bytes: usize) -> bool {
        if self.fits(bytes) {
            self.charge(bytes);
            true
        } else {
            false
        }
    }

    /// Release `bytes` previously charged.
    pub fn release(&mut self, bytes: usize) {
        debug_assert!(bytes <= self.used, "releasing more than charged");
        self.used = self.used.saturating_sub(bytes);
    }

    /// Release everything.
    pub fn release_all(&mut self) {
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_blocks_rejected() {
        assert!(MemoryLedger::with_blocks(0).is_err());
    }

    #[test]
    fn charge_release_cycle() {
        let mut m = MemoryLedger::with_blocks(1).unwrap();
        assert_eq!(m.budget_bytes(), BLOCK_SIZE);
        assert!(m.try_charge(BLOCK_SIZE));
        assert!(!m.try_charge(1));
        m.release(BLOCK_SIZE / 2);
        assert!(m.fits(BLOCK_SIZE / 2));
        assert!(m.try_charge(BLOCK_SIZE / 2));
        m.release_all();
        assert_eq!(m.used_bytes(), 0);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut m = MemoryLedger::with_blocks(2).unwrap();
        m.charge(100);
        m.charge(200);
        m.release(250);
        m.charge(10);
        assert_eq!(m.high_water_bytes(), 300);
        assert_eq!(m.used_bytes(), 60);
    }

    #[test]
    fn forced_charge_can_exceed_budget() {
        let mut m = MemoryLedger::with_blocks(1).unwrap();
        m.charge(10 * BLOCK_SIZE);
        assert!(!m.fits(1));
        assert_eq!(m.used_bytes(), 10 * BLOCK_SIZE);
    }

    #[test]
    fn budget_blocks_round_trips() {
        let m = MemoryLedger::with_blocks(7).unwrap();
        assert_eq!(m.budget_blocks(), 7);
    }
}
