//! A minimal growable byte buffer with little-endian append helpers and
//! front consumption — the subset of the `bytes` crate the spill codec
//! needs, kept in-tree so the workspace builds without external
//! dependencies.

/// Append-at-back, consume-at-front byte buffer.
///
/// The spill writer appends encoded rows and splits whole blocks off the
/// front; the reader appends device blocks and consumes decoded rows off the
/// front. Both patterns touch at most a block or a row at a time, so the
/// `Vec::drain`-based front consumption is not a hot spot.
#[derive(Debug, Default, Clone)]
pub struct ByteBuf {
    data: Vec<u8>,
}

impl ByteBuf {
    /// Empty buffer.
    pub fn new() -> Self {
        ByteBuf::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ByteBuf {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// The buffered bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Append a `u16` little-endian.
    pub fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` little-endian.
    pub fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64` little-endian.
    pub fn put_i64_le(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` little-endian.
    pub fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    pub fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Alias of [`Self::put_slice`] matching `Vec` naming.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Remove and return the first `n` bytes (must be available).
    pub fn split_to(&mut self, n: usize) -> Vec<u8> {
        assert!(n <= self.data.len(), "split_to past end");
        let tail = self.data.split_off(n);
        std::mem::replace(&mut self.data, tail)
    }

    /// Discard the first `n` bytes (must be available).
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.data.len(), "advance past end");
        self.data.drain(..n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_split_round_trip() {
        let mut b = ByteBuf::with_capacity(16);
        b.put_u8(7);
        b.put_u16_le(0x0102);
        b.put_u32_le(0x03040506);
        b.put_i64_le(-1);
        b.put_u64_le(u64::MAX);
        b.put_slice(b"xy");
        assert_eq!(b.len(), 1 + 2 + 4 + 8 + 8 + 2);
        let head = b.split_to(3);
        assert_eq!(head, vec![7, 0x02, 0x01]);
        assert_eq!(b.len(), 22);
        b.advance(4);
        assert_eq!(b.len(), 18);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn split_to_keeps_remainder_in_order() {
        let mut b = ByteBuf::new();
        b.put_slice(&[1, 2, 3, 4, 5]);
        let front = b.split_to(2);
        assert_eq!(front, vec![1, 2]);
        assert_eq!(b.as_slice(), &[3, 4, 5]);
    }
}
