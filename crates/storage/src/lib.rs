//! # wf-storage
//!
//! The storage substrate beneath the wfopt executors:
//!
//! * [`block`] — the block (page) model; all I/O is charged in blocks,
//! * [`cost`] — a thread-safe tracker of block reads/writes, comparisons and
//!   hashes plus a calibrated time model (the benchmark harness reports the
//!   modeled time, see DESIGN.md §2),
//! * [`codec`] — the row serialization format used by spill files, plus the
//!   zero-dependency LZ block compressor backends may apply at rest,
//! * [`colblock`] — columnar row batches: typed per-column lanes with
//!   validity bitmaps and a row-view shim, the vectorized layout operators
//!   stream between each other,
//! * [`backend`] — pluggable spill media behind the
//!   [`backend::SpillBackend`] adapter trait: in-memory, local temp files,
//!   or a simulated object store with latency/throughput knobs,
//! * [`spill`] — append-only spill files over a configured backend, owning
//!   all block-granular meter charging,
//! * [`prefetch`] — the async read-ahead pipeline that fetches upcoming
//!   spill blocks while the current one evaluates,
//! * [`mem`] — the sort-memory ledger (the paper's `M`),
//! * [`segstore`] — the spill-backed segment store: a ledger-governed pool
//!   of row blocks behind [`segstore::SegmentHandle`]s, which is how
//!   operator chains keep their physical resident set at
//!   `O(M + largest unit)` (pool spill traffic is metered separately from
//!   modeled I/O — see the module docs),
//! * [`table`] — an in-memory heap table with block accounting.
//!
//! The paper ran on PostgreSQL over SATA disks; this crate substitutes a
//! simulated block device that *counts* every block transferred, so the
//! experiments reproduce the paper's I/O behaviour (pass counts, spill
//! fractions) at laptop scale.

pub mod backend;
pub mod block;
pub mod bytebuf;
pub mod codec;
pub mod colblock;
pub mod cost;
pub mod mem;
pub mod prefetch;
pub mod segstore;
pub mod spill;
pub mod table;

pub use backend::{
    BackendCaps, BackendFile, BackendStats, LocalFileBackend, MemBackend, ObjectStoreBackend,
    ObjectStoreConfig, SpillBackend, SpillBackendKind, SpillConfig,
};
pub use block::{blocks_for_bytes, BLOCK_SIZE};
pub use colblock::{Bitmap, ColumnVec, RowBatch};
pub use cost::{CostSnapshot, CostTracker, CostWeights, PoolCounters};
pub use mem::MemoryLedger;
pub use prefetch::Prefetcher;
pub use segstore::{
    ResidencyHold, RingCharge, SegmentBuilder, SegmentHandle, SegmentReader, SegmentStore,
    StoreSnapshot,
};
pub use spill::{IoMeter, SpillFile, SpillMedium, SpillReader};
pub use table::Table;
