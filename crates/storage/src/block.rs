//! The block (page) model.
//!
//! Everything the cost models in the paper reason about — `B(R)`, `M`, merge
//! fan-in `F` — is measured in blocks. We fix the block size at 8 KiB
//! (PostgreSQL's default page size, which the paper's prototype used).

/// Size of one block in bytes (PostgreSQL default page size).
pub const BLOCK_SIZE: usize = 8192;

/// Number of blocks needed to hold `bytes` bytes (ceiling division); zero
/// bytes occupy zero blocks.
#[inline]
pub fn blocks_for_bytes(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(BLOCK_SIZE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceiling_division() {
        assert_eq!(blocks_for_bytes(0), 0);
        assert_eq!(blocks_for_bytes(1), 1);
        assert_eq!(blocks_for_bytes(BLOCK_SIZE), 1);
        assert_eq!(blocks_for_bytes(BLOCK_SIZE + 1), 2);
        assert_eq!(blocks_for_bytes(10 * BLOCK_SIZE), 10);
    }
}
