//! Row serialization for spill files.
//!
//! Format (little-endian):
//!
//! ```text
//! row   := arity:u16 value*
//! value := 0x00                      -- NULL
//!        | 0x01 i64                  -- Int
//!        | 0x02 f64-bits             -- Float
//!        | 0x03 len:u32 utf8-bytes   -- Str
//! ```
//!
//! [`wf_common::Value::encoded_len`] mirrors these sizes so block accounting
//! can be computed without serializing.
//!
//! Decoding reads from a `&mut &[u8]` cursor: on success the slice is
//! advanced past the row; on error the cursor state is unspecified and the
//! caller should treat the buffer as truncated.

use crate::bytebuf::ByteBuf;
use wf_common::{Error, Result, Row, Value};

const TAG_NULL: u8 = 0x00;
const TAG_INT: u8 = 0x01;
const TAG_FLOAT: u8 = 0x02;
const TAG_STR: u8 = 0x03;

/// Append the encoding of `row` to `buf`.
pub fn encode_row(row: &Row, buf: &mut ByteBuf) {
    buf.put_u16_le(row.arity() as u16);
    for v in row.values() {
        match v {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_u64_le(f.to_bits());
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
}

fn take<'a>(cursor: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8]> {
    if cursor.len() < n {
        return Err(corrupt(&format!("truncated {what}")));
    }
    let (head, tail) = cursor.split_at(n);
    *cursor = tail;
    Ok(head)
}

/// Decode one row from the front of `cursor`, advancing it. Returns an error
/// on truncated or corrupt input.
pub fn decode_row(cursor: &mut &[u8]) -> Result<Row> {
    let arity_bytes = take(cursor, 2, "arity")?;
    let arity = u16::from_le_bytes([arity_bytes[0], arity_bytes[1]]) as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        let tag = take(cursor, 1, "value tag")?[0];
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                let b = take(cursor, 8, "int")?;
                Value::Int(i64::from_le_bytes(b.try_into().expect("8 bytes")))
            }
            TAG_FLOAT => {
                let b = take(cursor, 8, "float")?;
                Value::Float(f64::from_bits(u64::from_le_bytes(
                    b.try_into().expect("8 bytes"),
                )))
            }
            TAG_STR => {
                let b = take(cursor, 4, "string length")?;
                let len = u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize;
                let body = take(cursor, len, "string body")?;
                let s = std::str::from_utf8(body)
                    .map_err(|_| corrupt("invalid utf-8 in string value"))?;
                Value::str(s.to_string())
            }
            other => return Err(corrupt(&format!("unknown value tag {other:#x}"))),
        };
        values.push(v);
    }
    Ok(Row::new(values))
}

fn corrupt(msg: &str) -> Error {
    Error::Execution(format!("spill codec: {msg}"))
}

/// Sentinel key length marking a keyless entry.
const NO_KEY: u16 = u16::MAX;

/// Append a key-carrying entry: `klen:u16 key-bytes row`. `klen = 0xFFFF`
/// marks a keyless entry (the row failed normalized-key encoding and the
/// reader must fall back to the comparator). Key bytes are the normalized
/// byte-comparable sort key; persisting them alongside the row lets run
/// read-back reuse the key instead of re-encoding it.
pub fn encode_keyed_row(key: Option<&[u8]>, row: &Row, buf: &mut ByteBuf) {
    match key {
        Some(k) => {
            assert!(
                k.len() < NO_KEY as usize,
                "normalized key longer than u16 framing"
            );
            buf.put_u16_le(k.len() as u16);
            buf.put_slice(k);
        }
        None => buf.put_u16_le(NO_KEY),
    }
    encode_row(row, buf);
}

/// Decode one key-carrying entry from the front of `cursor`, advancing it.
pub fn decode_keyed_row(cursor: &mut &[u8]) -> Result<(Option<Vec<u8>>, Row)> {
    let klen_bytes = take(cursor, 2, "key length")?;
    let klen = u16::from_le_bytes([klen_bytes[0], klen_bytes[1]]);
    let key = if klen == NO_KEY {
        None
    } else {
        Some(take(cursor, klen as usize, "key bytes")?.to_vec())
    };
    let row = decode_row(cursor)?;
    Ok((key, row))
}

/// Bytes the keyed framing adds on top of [`Row::encoded_len`].
pub fn keyed_overhead(key: Option<&[u8]>) -> usize {
    2 + key.map_or(0, <[u8]>::len)
}

// ---------------------------------------------------------------------------
// Block compression (zero-dependency LZSS-style codec)
// ---------------------------------------------------------------------------
//
// Spill blocks are highly self-similar — repeated arity headers, value tags,
// and key prefixes — so a tiny greedy LZ with a single-probe hash table
// recovers most of the easy redundancy without pulling in a dependency.
//
// Framing: `mode:u8 raw_len:u32le payload`.
//   mode 0 → payload is the raw block verbatim (compression didn't help);
//   mode 1 → payload is an LZ token stream:
//     token := 1lllllll dist:u16le   -- copy (l + MIN_MATCH) bytes from
//                                       `dist` bytes back (dist ≥ 1)
//            | 0lllllll byte{l+1}    -- run of l+1 literal bytes
//
// Every compressed block decodes to exactly `raw_len` bytes; anything else
// is a corruption error.

/// Stored-raw frame marker.
const MODE_RAW: u8 = 0;
/// LZ token-stream frame marker.
const MODE_LZ: u8 = 1;
/// Shortest back-reference worth a 3-byte token.
const MIN_MATCH: usize = 4;
/// Longest match a single copy token encodes (`MIN_MATCH + 127`).
const MAX_MATCH: usize = MIN_MATCH + 0x7f;
/// Longest literal run a single token encodes.
const MAX_LITERAL_RUN: usize = 0x80;
/// Farthest back a u16 distance can reach.
const MAX_DISTANCE: usize = u16::MAX as usize;
const HASH_BITS: u32 = 13;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn flush_literals(src: &[u8], start: usize, end: usize, out: &mut Vec<u8>) {
    let mut at = start;
    while at < end {
        let run = (end - at).min(MAX_LITERAL_RUN);
        out.push((run - 1) as u8);
        out.extend_from_slice(&src[at..at + run]);
        at += run;
    }
}

/// Compress one spill block. Always produces a valid frame: if the LZ pass
/// doesn't beat storing the block raw, the raw frame is emitted instead.
pub fn compress_block(raw: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() / 2 + 16);
    out.push(MODE_LZ);
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());

    let mut table = [usize::MAX; 1 << HASH_BITS];
    let mut i = 0usize;
    let mut literal_start = 0usize;
    while i + MIN_MATCH <= raw.len() {
        let h = hash4(raw, i);
        let candidate = table[h];
        table[h] = i;
        let matched = candidate != usize::MAX
            && i - candidate <= MAX_DISTANCE
            && raw[candidate..candidate + MIN_MATCH] == raw[i..i + MIN_MATCH];
        if matched {
            let mut len = MIN_MATCH;
            let limit = (raw.len() - i).min(MAX_MATCH);
            while len < limit && raw[candidate + len] == raw[i + len] {
                len += 1;
            }
            flush_literals(raw, literal_start, i, &mut out);
            out.push(0x80 | (len - MIN_MATCH) as u8);
            out.extend_from_slice(&((i - candidate) as u16).to_le_bytes());
            i += len;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(raw, literal_start, raw.len(), &mut out);

    if out.len() < 5 + raw.len() {
        out
    } else {
        let mut stored = Vec::with_capacity(5 + raw.len());
        stored.push(MODE_RAW);
        stored.extend_from_slice(&(raw.len() as u32).to_le_bytes());
        stored.extend_from_slice(raw);
        stored
    }
}

/// Decompress one frame produced by [`compress_block`].
pub fn decompress_block(frame: &[u8]) -> Result<Vec<u8>> {
    if frame.len() < 5 {
        return Err(corrupt("truncated compressed block header"));
    }
    let mode = frame[0];
    let raw_len = u32::from_le_bytes(frame[1..5].try_into().expect("4 bytes")) as usize;
    let payload = &frame[5..];
    match mode {
        MODE_RAW => {
            if payload.len() != raw_len {
                return Err(corrupt("stored block length mismatch"));
            }
            Ok(payload.to_vec())
        }
        MODE_LZ => {
            let mut out = Vec::with_capacity(raw_len);
            let mut cursor = payload;
            while !cursor.is_empty() {
                let tok = take(&mut cursor, 1, "compression token")?[0];
                if tok & 0x80 != 0 {
                    let len = (tok & 0x7f) as usize + MIN_MATCH;
                    let d = take(&mut cursor, 2, "match distance")?;
                    let dist = u16::from_le_bytes([d[0], d[1]]) as usize;
                    if dist == 0 || dist > out.len() {
                        return Err(corrupt("match distance out of range"));
                    }
                    // Byte-at-a-time: a distance shorter than the match
                    // length means the copy overlaps its own output (RLE).
                    let start = out.len() - dist;
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                } else {
                    let run = (tok & 0x7f) as usize + 1;
                    out.extend_from_slice(take(&mut cursor, run, "literal run")?);
                }
            }
            if out.len() != raw_len {
                return Err(corrupt("decompressed length mismatch"));
            }
            Ok(out)
        }
        other => Err(corrupt(&format!("unknown compression mode {other:#x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::row;

    fn round_trip(r: &Row) -> Row {
        let mut buf = ByteBuf::new();
        encode_row(r, &mut buf);
        assert_eq!(buf.len(), r.encoded_len(), "encoded_len must match codec");
        let mut cursor = buf.as_slice();
        let back = decode_row(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        back
    }

    #[test]
    fn round_trips_all_types() {
        let mut r = row![1i64, 2.5f64, "hello"];
        r.push(Value::Null);
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn round_trips_empty_row() {
        let r = Row::new(vec![]);
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn round_trips_extremes() {
        let r = row![i64::MIN, i64::MAX, f64::NEG_INFINITY, f64::NAN, ""];
        let back = round_trip(&r);
        // NaN compares equal under total order semantics.
        assert_eq!(back, r);
    }

    #[test]
    fn multiple_rows_stream() {
        let rows = vec![row![1], row![2, "x"], row![Value::Null]];
        let mut buf = ByteBuf::new();
        for r in &rows {
            encode_row(r, &mut buf);
        }
        let mut cursor = buf.as_slice();
        for r in &rows {
            assert_eq!(&decode_row(&mut cursor).unwrap(), r);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = ByteBuf::new();
        encode_row(&row![123, "abcdef"], &mut buf);
        for cut in [1, 3, 10] {
            let full = buf.as_slice();
            let mut short = &full[..full.len() - cut];
            assert!(decode_row(&mut short).is_err());
        }
    }

    #[test]
    fn keyed_entries_round_trip() {
        let mut buf = ByteBuf::new();
        let r1 = row![1, "x"];
        let r2 = row![2.5f64, Value::Null];
        encode_keyed_row(Some(&[0x01, 0xFF, 0x00]), &r1, &mut buf);
        encode_keyed_row(None, &r2, &mut buf);
        encode_keyed_row(Some(&[]), &r1, &mut buf);
        let mut cursor = buf.as_slice();
        let (k1, back1) = decode_keyed_row(&mut cursor).unwrap();
        assert_eq!(k1.as_deref(), Some(&[0x01, 0xFF, 0x00][..]));
        assert_eq!(back1, r1);
        let (k2, back2) = decode_keyed_row(&mut cursor).unwrap();
        assert_eq!(k2, None);
        assert_eq!(back2, r2);
        let (k3, back3) = decode_keyed_row(&mut cursor).unwrap();
        assert_eq!(k3.as_deref(), Some(&[][..]));
        assert_eq!(back3, r1);
        assert!(cursor.is_empty());
    }

    #[test]
    fn keyed_overhead_matches_encoding() {
        for key in [None, Some(&[1u8, 2, 3][..]), Some(&[][..])] {
            let mut buf = ByteBuf::new();
            let r = row![7, "abc"];
            encode_keyed_row(key, &r, &mut buf);
            assert_eq!(buf.len(), keyed_overhead(key) + r.encoded_len());
        }
    }

    #[test]
    fn truncated_keyed_entry_errors() {
        let mut buf = ByteBuf::new();
        encode_keyed_row(Some(&[9u8; 8]), &row![1], &mut buf);
        let full = buf.as_slice();
        for cut in [1, 5, full.len() - 1] {
            let mut short = &full[..full.len() - cut];
            assert!(decode_keyed_row(&mut short).is_err());
        }
    }

    #[test]
    fn unknown_tag_errors() {
        let mut buf = ByteBuf::new();
        buf.put_u16_le(1);
        buf.put_u8(0x7f);
        let mut cursor = buf.as_slice();
        assert!(decode_row(&mut cursor).is_err());
    }

    fn compress_round_trip(raw: &[u8]) -> usize {
        let frame = compress_block(raw);
        assert_eq!(decompress_block(&frame).unwrap(), raw);
        frame.len()
    }

    #[test]
    fn compression_round_trips_empty_and_tiny() {
        compress_round_trip(&[]);
        compress_round_trip(&[42]);
        compress_round_trip(b"abc");
    }

    #[test]
    fn compression_shrinks_repetitive_blocks() {
        let raw: Vec<u8> = b"the quick brown fox jumps over the lazy dog "
            .iter()
            .cycle()
            .take(8192)
            .copied()
            .collect();
        let size = compress_round_trip(&raw);
        assert!(size < raw.len() / 4, "{size} should be < {}", raw.len() / 4);
    }

    #[test]
    fn compression_handles_overlapping_matches() {
        // Pure RLE: dist 1, len > dist → overlapping copy.
        let raw = vec![7u8; 5000];
        let size = compress_round_trip(&raw);
        assert!(size < 200);
    }

    #[test]
    fn incompressible_blocks_are_stored_raw() {
        // A SplitMix64 byte stream has no 4-byte repeats to speak of.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut raw = Vec::with_capacity(4096);
        while raw.len() < 4096 {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            raw.extend_from_slice(&(z ^ (z >> 31)).to_le_bytes());
        }
        let frame = compress_block(&raw);
        assert_eq!(frame[0], MODE_RAW);
        assert_eq!(frame.len(), raw.len() + 5);
        assert_eq!(decompress_block(&frame).unwrap(), raw);
    }

    #[test]
    fn corrupt_compressed_frames_error() {
        assert!(decompress_block(&[]).is_err());
        assert!(decompress_block(&[MODE_LZ, 0, 0]).is_err());
        assert!(decompress_block(&[9, 0, 0, 0, 0]).is_err(), "unknown mode");
        // Stored frame whose payload length disagrees with raw_len.
        assert!(decompress_block(&[MODE_RAW, 5, 0, 0, 0, 1, 2]).is_err());
        // Match distance pointing before the start of output.
        let bad = [MODE_LZ, 4, 0, 0, 0, 0x80, 9, 0];
        assert!(decompress_block(&bad).is_err());
        // Token stream that decodes to the wrong length.
        let short = [MODE_LZ, 9, 0, 0, 0, 0x01, b'a', b'b'];
        assert!(decompress_block(&short).is_err());
    }
}
