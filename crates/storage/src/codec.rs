//! Row serialization for spill files.
//!
//! Format (little-endian):
//!
//! ```text
//! row   := arity:u16 value*
//! value := 0x00                      -- NULL
//!        | 0x01 i64                  -- Int
//!        | 0x02 f64-bits             -- Float
//!        | 0x03 len:u32 utf8-bytes   -- Str
//! ```
//!
//! [`wf_common::Value::encoded_len`] mirrors these sizes so block accounting
//! can be computed without serializing.

use bytes::{Buf, BufMut, BytesMut};
use wf_common::{Error, Result, Row, Value};

const TAG_NULL: u8 = 0x00;
const TAG_INT: u8 = 0x01;
const TAG_FLOAT: u8 = 0x02;
const TAG_STR: u8 = 0x03;

/// Append the encoding of `row` to `buf`.
pub fn encode_row(row: &Row, buf: &mut BytesMut) {
    buf.put_u16_le(row.arity() as u16);
    for v in row.values() {
        match v {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_u64_le(f.to_bits());
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
}

/// Decode one row from the front of `buf`, advancing it. Returns an error on
/// truncated or corrupt input.
pub fn decode_row(buf: &mut impl Buf) -> Result<Row> {
    if buf.remaining() < 2 {
        return Err(corrupt("truncated arity"));
    }
    let arity = buf.get_u16_le() as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        if buf.remaining() < 1 {
            return Err(corrupt("truncated value tag"));
        }
        let tag = buf.get_u8();
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                if buf.remaining() < 8 {
                    return Err(corrupt("truncated int"));
                }
                Value::Int(buf.get_i64_le())
            }
            TAG_FLOAT => {
                if buf.remaining() < 8 {
                    return Err(corrupt("truncated float"));
                }
                Value::Float(f64::from_bits(buf.get_u64_le()))
            }
            TAG_STR => {
                if buf.remaining() < 4 {
                    return Err(corrupt("truncated string length"));
                }
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return Err(corrupt("truncated string body"));
                }
                let mut bytes = vec![0u8; len];
                buf.copy_to_slice(&mut bytes);
                let s = String::from_utf8(bytes)
                    .map_err(|_| corrupt("invalid utf-8 in string value"))?;
                Value::str(s)
            }
            other => return Err(corrupt(&format!("unknown value tag {other:#x}"))),
        };
        values.push(v);
    }
    Ok(Row::new(values))
}

fn corrupt(msg: &str) -> Error {
    Error::Execution(format!("spill codec: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::row;

    fn round_trip(r: &Row) -> Row {
        let mut buf = BytesMut::new();
        encode_row(r, &mut buf);
        assert_eq!(buf.len(), r.encoded_len(), "encoded_len must match codec");
        let mut cursor = buf.freeze();
        let back = decode_row(&mut cursor).unwrap();
        assert_eq!(cursor.remaining(), 0);
        back
    }

    #[test]
    fn round_trips_all_types() {
        let mut r = row![1i64, 2.5f64, "hello"];
        r.push(Value::Null);
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn round_trips_empty_row() {
        let r = Row::new(vec![]);
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn round_trips_extremes() {
        let r = row![i64::MIN, i64::MAX, f64::NEG_INFINITY, f64::NAN, ""];
        let back = round_trip(&r);
        // NaN compares equal under total order semantics.
        assert_eq!(back, r);
    }

    #[test]
    fn multiple_rows_stream() {
        let rows = vec![row![1], row![2, "x"], row![Value::Null]];
        let mut buf = BytesMut::new();
        for r in &rows {
            encode_row(r, &mut buf);
        }
        let mut cursor = buf.freeze();
        for r in &rows {
            assert_eq!(&decode_row(&mut cursor).unwrap(), r);
        }
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = BytesMut::new();
        encode_row(&row![123, "abcdef"], &mut buf);
        for cut in [1, 3, 10] {
            let mut short = buf.clone().freeze();
            short.truncate(buf.len() - cut);
            assert!(decode_row(&mut short).is_err());
        }
    }

    #[test]
    fn unknown_tag_errors() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(1);
        buf.put_u8(0x7f);
        assert!(decode_row(&mut buf.freeze()).is_err());
    }
}
