//! Row serialization for spill files.
//!
//! Format (little-endian):
//!
//! ```text
//! row   := arity:u16 value*
//! value := 0x00                      -- NULL
//!        | 0x01 i64                  -- Int
//!        | 0x02 f64-bits             -- Float
//!        | 0x03 len:u32 utf8-bytes   -- Str
//! ```
//!
//! [`wf_common::Value::encoded_len`] mirrors these sizes so block accounting
//! can be computed without serializing.
//!
//! Decoding reads from a `&mut &[u8]` cursor: on success the slice is
//! advanced past the row; on error the cursor state is unspecified and the
//! caller should treat the buffer as truncated.

use crate::bytebuf::ByteBuf;
use wf_common::{Error, Result, Row, Value};

const TAG_NULL: u8 = 0x00;
const TAG_INT: u8 = 0x01;
const TAG_FLOAT: u8 = 0x02;
const TAG_STR: u8 = 0x03;

/// Append the encoding of `row` to `buf`.
pub fn encode_row(row: &Row, buf: &mut ByteBuf) {
    buf.put_u16_le(row.arity() as u16);
    for v in row.values() {
        match v {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_u64_le(f.to_bits());
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
}

fn take<'a>(cursor: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8]> {
    if cursor.len() < n {
        return Err(corrupt(&format!("truncated {what}")));
    }
    let (head, tail) = cursor.split_at(n);
    *cursor = tail;
    Ok(head)
}

/// Decode one row from the front of `cursor`, advancing it. Returns an error
/// on truncated or corrupt input.
pub fn decode_row(cursor: &mut &[u8]) -> Result<Row> {
    let arity_bytes = take(cursor, 2, "arity")?;
    let arity = u16::from_le_bytes([arity_bytes[0], arity_bytes[1]]) as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        let tag = take(cursor, 1, "value tag")?[0];
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                let b = take(cursor, 8, "int")?;
                Value::Int(i64::from_le_bytes(b.try_into().expect("8 bytes")))
            }
            TAG_FLOAT => {
                let b = take(cursor, 8, "float")?;
                Value::Float(f64::from_bits(u64::from_le_bytes(
                    b.try_into().expect("8 bytes"),
                )))
            }
            TAG_STR => {
                let b = take(cursor, 4, "string length")?;
                let len = u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize;
                let body = take(cursor, len, "string body")?;
                let s = std::str::from_utf8(body)
                    .map_err(|_| corrupt("invalid utf-8 in string value"))?;
                Value::str(s.to_string())
            }
            other => return Err(corrupt(&format!("unknown value tag {other:#x}"))),
        };
        values.push(v);
    }
    Ok(Row::new(values))
}

fn corrupt(msg: &str) -> Error {
    Error::Execution(format!("spill codec: {msg}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::row;

    fn round_trip(r: &Row) -> Row {
        let mut buf = ByteBuf::new();
        encode_row(r, &mut buf);
        assert_eq!(buf.len(), r.encoded_len(), "encoded_len must match codec");
        let mut cursor = buf.as_slice();
        let back = decode_row(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        back
    }

    #[test]
    fn round_trips_all_types() {
        let mut r = row![1i64, 2.5f64, "hello"];
        r.push(Value::Null);
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn round_trips_empty_row() {
        let r = Row::new(vec![]);
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn round_trips_extremes() {
        let r = row![i64::MIN, i64::MAX, f64::NEG_INFINITY, f64::NAN, ""];
        let back = round_trip(&r);
        // NaN compares equal under total order semantics.
        assert_eq!(back, r);
    }

    #[test]
    fn multiple_rows_stream() {
        let rows = vec![row![1], row![2, "x"], row![Value::Null]];
        let mut buf = ByteBuf::new();
        for r in &rows {
            encode_row(r, &mut buf);
        }
        let mut cursor = buf.as_slice();
        for r in &rows {
            assert_eq!(&decode_row(&mut cursor).unwrap(), r);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = ByteBuf::new();
        encode_row(&row![123, "abcdef"], &mut buf);
        for cut in [1, 3, 10] {
            let full = buf.as_slice();
            let mut short = &full[..full.len() - cut];
            assert!(decode_row(&mut short).is_err());
        }
    }

    #[test]
    fn unknown_tag_errors() {
        let mut buf = ByteBuf::new();
        buf.put_u16_le(1);
        buf.put_u8(0x7f);
        let mut cursor = buf.as_slice();
        assert!(decode_row(&mut cursor).is_err());
    }
}
