//! Row serialization for spill files.
//!
//! Format (little-endian):
//!
//! ```text
//! row   := arity:u16 value*
//! value := 0x00                      -- NULL
//!        | 0x01 i64                  -- Int
//!        | 0x02 f64-bits             -- Float
//!        | 0x03 len:u32 utf8-bytes   -- Str
//! ```
//!
//! [`wf_common::Value::encoded_len`] mirrors these sizes so block accounting
//! can be computed without serializing.
//!
//! Decoding reads from a `&mut &[u8]` cursor: on success the slice is
//! advanced past the row; on error the cursor state is unspecified and the
//! caller should treat the buffer as truncated.

use crate::bytebuf::ByteBuf;
use wf_common::{Error, Result, Row, Value};

const TAG_NULL: u8 = 0x00;
const TAG_INT: u8 = 0x01;
const TAG_FLOAT: u8 = 0x02;
const TAG_STR: u8 = 0x03;

/// Append the encoding of `row` to `buf`.
pub fn encode_row(row: &Row, buf: &mut ByteBuf) {
    buf.put_u16_le(row.arity() as u16);
    for v in row.values() {
        match v {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_u64_le(f.to_bits());
            }
            Value::Str(s) => {
                buf.put_u8(TAG_STR);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
    }
}

fn take<'a>(cursor: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8]> {
    if cursor.len() < n {
        return Err(corrupt(&format!("truncated {what}")));
    }
    let (head, tail) = cursor.split_at(n);
    *cursor = tail;
    Ok(head)
}

/// Decode one row from the front of `cursor`, advancing it. Returns an error
/// on truncated or corrupt input.
pub fn decode_row(cursor: &mut &[u8]) -> Result<Row> {
    let arity_bytes = take(cursor, 2, "arity")?;
    let arity = u16::from_le_bytes([arity_bytes[0], arity_bytes[1]]) as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        let tag = take(cursor, 1, "value tag")?[0];
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                let b = take(cursor, 8, "int")?;
                Value::Int(i64::from_le_bytes(b.try_into().expect("8 bytes")))
            }
            TAG_FLOAT => {
                let b = take(cursor, 8, "float")?;
                Value::Float(f64::from_bits(u64::from_le_bytes(
                    b.try_into().expect("8 bytes"),
                )))
            }
            TAG_STR => {
                let b = take(cursor, 4, "string length")?;
                let len = u32::from_le_bytes(b.try_into().expect("4 bytes")) as usize;
                let body = take(cursor, len, "string body")?;
                let s = std::str::from_utf8(body)
                    .map_err(|_| corrupt("invalid utf-8 in string value"))?;
                Value::str(s.to_string())
            }
            other => return Err(corrupt(&format!("unknown value tag {other:#x}"))),
        };
        values.push(v);
    }
    Ok(Row::new(values))
}

fn corrupt(msg: &str) -> Error {
    Error::Execution(format!("spill codec: {msg}"))
}

/// Sentinel key length marking a keyless entry.
const NO_KEY: u16 = u16::MAX;

/// Append a key-carrying entry: `klen:u16 key-bytes row`. `klen = 0xFFFF`
/// marks a keyless entry (the row failed normalized-key encoding and the
/// reader must fall back to the comparator). Key bytes are the normalized
/// byte-comparable sort key; persisting them alongside the row lets run
/// read-back reuse the key instead of re-encoding it.
pub fn encode_keyed_row(key: Option<&[u8]>, row: &Row, buf: &mut ByteBuf) {
    match key {
        Some(k) => {
            assert!(
                k.len() < NO_KEY as usize,
                "normalized key longer than u16 framing"
            );
            buf.put_u16_le(k.len() as u16);
            buf.put_slice(k);
        }
        None => buf.put_u16_le(NO_KEY),
    }
    encode_row(row, buf);
}

/// Decode one key-carrying entry from the front of `cursor`, advancing it.
pub fn decode_keyed_row(cursor: &mut &[u8]) -> Result<(Option<Vec<u8>>, Row)> {
    let klen_bytes = take(cursor, 2, "key length")?;
    let klen = u16::from_le_bytes([klen_bytes[0], klen_bytes[1]]);
    let key = if klen == NO_KEY {
        None
    } else {
        Some(take(cursor, klen as usize, "key bytes")?.to_vec())
    };
    let row = decode_row(cursor)?;
    Ok((key, row))
}

/// Bytes the keyed framing adds on top of [`Row::encoded_len`].
pub fn keyed_overhead(key: Option<&[u8]>) -> usize {
    2 + key.map_or(0, <[u8]>::len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::row;

    fn round_trip(r: &Row) -> Row {
        let mut buf = ByteBuf::new();
        encode_row(r, &mut buf);
        assert_eq!(buf.len(), r.encoded_len(), "encoded_len must match codec");
        let mut cursor = buf.as_slice();
        let back = decode_row(&mut cursor).unwrap();
        assert!(cursor.is_empty());
        back
    }

    #[test]
    fn round_trips_all_types() {
        let mut r = row![1i64, 2.5f64, "hello"];
        r.push(Value::Null);
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn round_trips_empty_row() {
        let r = Row::new(vec![]);
        assert_eq!(round_trip(&r), r);
    }

    #[test]
    fn round_trips_extremes() {
        let r = row![i64::MIN, i64::MAX, f64::NEG_INFINITY, f64::NAN, ""];
        let back = round_trip(&r);
        // NaN compares equal under total order semantics.
        assert_eq!(back, r);
    }

    #[test]
    fn multiple_rows_stream() {
        let rows = vec![row![1], row![2, "x"], row![Value::Null]];
        let mut buf = ByteBuf::new();
        for r in &rows {
            encode_row(r, &mut buf);
        }
        let mut cursor = buf.as_slice();
        for r in &rows {
            assert_eq!(&decode_row(&mut cursor).unwrap(), r);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = ByteBuf::new();
        encode_row(&row![123, "abcdef"], &mut buf);
        for cut in [1, 3, 10] {
            let full = buf.as_slice();
            let mut short = &full[..full.len() - cut];
            assert!(decode_row(&mut short).is_err());
        }
    }

    #[test]
    fn keyed_entries_round_trip() {
        let mut buf = ByteBuf::new();
        let r1 = row![1, "x"];
        let r2 = row![2.5f64, Value::Null];
        encode_keyed_row(Some(&[0x01, 0xFF, 0x00]), &r1, &mut buf);
        encode_keyed_row(None, &r2, &mut buf);
        encode_keyed_row(Some(&[]), &r1, &mut buf);
        let mut cursor = buf.as_slice();
        let (k1, back1) = decode_keyed_row(&mut cursor).unwrap();
        assert_eq!(k1.as_deref(), Some(&[0x01, 0xFF, 0x00][..]));
        assert_eq!(back1, r1);
        let (k2, back2) = decode_keyed_row(&mut cursor).unwrap();
        assert_eq!(k2, None);
        assert_eq!(back2, r2);
        let (k3, back3) = decode_keyed_row(&mut cursor).unwrap();
        assert_eq!(k3.as_deref(), Some(&[][..]));
        assert_eq!(back3, r1);
        assert!(cursor.is_empty());
    }

    #[test]
    fn keyed_overhead_matches_encoding() {
        for key in [None, Some(&[1u8, 2, 3][..]), Some(&[][..])] {
            let mut buf = ByteBuf::new();
            let r = row![7, "abc"];
            encode_keyed_row(key, &r, &mut buf);
            assert_eq!(buf.len(), keyed_overhead(key) + r.encoded_len());
        }
    }

    #[test]
    fn truncated_keyed_entry_errors() {
        let mut buf = ByteBuf::new();
        encode_keyed_row(Some(&[9u8; 8]), &row![1], &mut buf);
        let full = buf.as_slice();
        for cut in [1, 5, full.len() - 1] {
            let mut short = &full[..full.len() - cut];
            assert!(decode_keyed_row(&mut short).is_err());
        }
    }

    #[test]
    fn unknown_tag_errors() {
        let mut buf = ByteBuf::new();
        buf.put_u16_le(1);
        buf.put_u8(0x7f);
        let mut cursor = buf.as_slice();
        assert!(decode_row(&mut cursor).is_err());
    }
}
