//! Async read-ahead over a [`BackendFile`].
//!
//! A [`Prefetcher`] owns a small pool of worker threads that fetch (and
//! decompress) upcoming spill blocks into a bounded ready-buffer while the
//! consumer evaluates the current one. [`SpillReader`](crate::spill::SpillReader)
//! asks for blocks strictly in order; the prefetcher keeps at most
//! `depth` blocks in flight or ready ahead of the consumer, so memory stays
//! bounded no matter how slow the evaluation side is.
//!
//! The consumer-facing contract is intentionally identical to a cold
//! synchronous read: `next_block()` returns the decompressed payload of the
//! next logical block, in order, or an error. Whether the block was already
//! waiting (a *prefetch hit*, recorded on the backend's counters) or the
//! call had to block (a *miss*) only changes wall time — never the bytes
//! delivered, which is what keeps backends bit-identical in rows and
//! counters.

use crate::backend::{BackendCounters, BackendFile};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use wf_common::{Error, Result};

/// Cap on worker threads — read-ahead deeper than this is buffered, not
/// fetched more concurrently.
const MAX_WORKERS: usize = 4;

struct State {
    /// Next block index a worker should claim.
    next_fetch: u64,
    /// Next block index the consumer will ask for.
    consumed: u64,
    /// Fetched blocks waiting for the consumer.
    ready: HashMap<u64, Result<Vec<u8>>>,
    /// Set by drop; workers exit at the next wakeup.
    stop: bool,
}

struct Shared {
    file: Arc<dyn BackendFile>,
    /// Decompress payloads in the worker (overlaps CPU with I/O too).
    decompress: bool,
    total_blocks: u64,
    depth: u64,
    state: Mutex<State>,
    cond: Condvar,
    counters: Arc<BackendCounters>,
}

/// Bounded read-ahead pipeline. Create once per spill read pass; drop joins
/// the workers (and, once all handles are gone, deletes the backing file).
pub struct Prefetcher {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Prefetcher {
    /// Start reading ahead over `file`. `depth` is the maximum number of
    /// blocks fetched beyond the consumer's position (must be ≥ 1; the
    /// caller uses a direct reader for depth 0).
    pub fn new(
        file: Arc<dyn BackendFile>,
        total_blocks: u64,
        depth: usize,
        decompress: bool,
        counters: Arc<BackendCounters>,
    ) -> Self {
        let depth = depth.max(1);
        let shared = Arc::new(Shared {
            file,
            decompress,
            total_blocks,
            depth: depth as u64,
            state: Mutex::new(State {
                next_fetch: 0,
                consumed: 0,
                ready: HashMap::new(),
                stop: false,
            }),
            cond: Condvar::new(),
            counters,
        });
        let workers = (0..depth.min(MAX_WORKERS).min(total_blocks.max(1) as usize))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Prefetcher { shared, workers }
    }

    /// Return the next logical block, in order. Records a prefetch hit when
    /// the block was already in the ready-buffer, a miss when the call had
    /// to wait.
    pub fn next_block(&self) -> Result<Vec<u8>> {
        let shared = &*self.shared;
        let mut state = shared.state.lock().expect("prefetch lock");
        let idx = state.consumed;
        if idx >= shared.total_blocks {
            return Err(Error::Execution("prefetch read past end of spill".into()));
        }
        let mut recorded = false;
        let block = loop {
            if let Some(block) = state.ready.remove(&idx) {
                if !recorded {
                    shared.counters.record_prefetch(true);
                }
                break block;
            }
            if !recorded {
                shared.counters.record_prefetch(false);
                recorded = true;
            }
            state = shared.cond.wait(state).expect("prefetch lock");
        };
        state.consumed = idx + 1;
        // Freeing a buffer slot may unblock a parked worker.
        shared.cond.notify_all();
        block
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("prefetch lock");
            state.stop = true;
        }
        self.shared.cond.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // Claim the next index within the read-ahead window, or park.
        let idx = {
            let mut state = shared.state.lock().expect("prefetch lock");
            loop {
                if state.stop {
                    return;
                }
                if state.next_fetch >= shared.total_blocks {
                    return; // everything claimed; remaining work is in-flight
                }
                if state.next_fetch < state.consumed + shared.depth {
                    let idx = state.next_fetch;
                    state.next_fetch += 1;
                    break idx;
                }
                state = shared.cond.wait(state).expect("prefetch lock");
            }
        };

        let fetched = shared.file.read_block(idx).and_then(|payload| {
            if shared.decompress {
                crate::codec::decompress_block(&payload)
            } else {
                Ok(payload)
            }
        });

        let mut state = shared.state.lock().expect("prefetch lock");
        if state.stop {
            return;
        }
        state.ready.insert(idx, fetched);
        shared.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{MemBackend, ObjectStoreBackend, ObjectStoreConfig, SpillBackend};
    use std::time::{Duration, Instant};

    fn filled(backend: &dyn SpillBackend, blocks: u32) -> Arc<dyn BackendFile> {
        let mut f = backend.open().unwrap();
        for i in 0..blocks {
            f.append_block(&i.to_le_bytes()).unwrap();
        }
        Arc::from(f)
    }

    #[test]
    fn delivers_blocks_in_order() {
        let backend = MemBackend::new();
        let file = filled(&*backend, 16);
        let pf = Prefetcher::new(file, 16, 3, false, Arc::clone(backend.counters()));
        for i in 0..16u32 {
            assert_eq!(pf.next_block().unwrap(), i.to_le_bytes());
        }
        assert!(pf.next_block().is_err(), "reads past end must fail");
        let s = backend.stats();
        assert_eq!(s.prefetch_hits + s.prefetch_misses, 16);
    }

    #[test]
    fn decompresses_in_workers() {
        let backend = MemBackend::new();
        let mut f = backend.open().unwrap();
        let raw = vec![5u8; 4000];
        f.append_block(&crate::codec::compress_block(&raw)).unwrap();
        let pf = Prefetcher::new(Arc::from(f), 1, 2, true, Arc::clone(backend.counters()));
        assert_eq!(pf.next_block().unwrap(), raw);
    }

    #[test]
    fn overlaps_latency_of_slow_backends() {
        let per_get = Duration::from_millis(4);
        let backend = ObjectStoreBackend::new(ObjectStoreConfig {
            request_latency: Duration::ZERO,
            first_byte_delay: per_get,
            throughput_bytes_per_sec: 0,
        });
        let file = filled(&*backend, 12);
        let pf = Prefetcher::new(file, 12, 4, false, Arc::clone(backend.counters()));
        let t = Instant::now();
        for _ in 0..12 {
            pf.next_block().unwrap();
        }
        let wall = t.elapsed();
        // Serial cold reads would cost 12 × 4 ms = 48 ms; four overlapping
        // fetchers should land well under that.
        assert!(wall < per_get * 9, "prefetch took {wall:?}");
    }

    #[test]
    fn early_drop_joins_workers_cleanly() {
        let backend = ObjectStoreBackend::new(ObjectStoreConfig {
            request_latency: Duration::from_millis(2),
            ..ObjectStoreConfig::default()
        });
        let file = filled(&*backend, 32);
        let pf = Prefetcher::new(file, 32, 4, false, Arc::clone(backend.counters()));
        pf.next_block().unwrap();
        drop(pf); // mid-stream abort: must not hang or panic
    }

    #[test]
    fn surfaces_read_errors() {
        let backend = MemBackend::new();
        let file = filled(&*backend, 2);
        // Claim more blocks than exist: index 2 will error in the worker.
        let pf = Prefetcher::new(file, 3, 2, false, Arc::clone(backend.counters()));
        assert!(pf.next_block().is_ok());
        assert!(pf.next_block().is_ok());
        assert!(pf.next_block().is_err());
    }
}
