//! Columnar row batches.
//!
//! A [`RowBatch`] stores a uniform-arity run of rows column-major: each
//! column becomes a typed lane ([`ColumnVec`]) with a validity [`Bitmap`],
//! falling back to a boxed-value lane when a column mixes types. Batches are
//! a *physical* layout only — the row-view shim ([`RowBatch::row`]) rebuilds
//! the exact [`Row`] that went in, so operators migrate to per-column loops
//! incrementally while the cost model keeps charging per logical row/block.
//!
//! Lane selection is per column and value-preserving: a lane is used only
//! when every non-null value in the column has that type, so `Int(2)` never
//! silently widens to `Float(2.0)` on round-trip.

use std::hash::{Hash, Hasher};
use std::sync::Arc;
use wf_common::{AttrSet, Row, Value};

/// A packed validity (non-null) bitmap.
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Empty bitmap with room for `n` bits.
    pub fn with_capacity(n: usize) -> Self {
        Bitmap {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Append one bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Bit at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set (valid) bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every bit is set (vacuously true when empty) — lets per-lane
    /// loops skip the null check entirely.
    pub fn all_set(&self) -> bool {
        self.count_ones() == self.len
    }
}

/// One column of a [`RowBatch`]: a typed lane plus validity, or a boxed
/// fallback for mixed-type columns.
#[derive(Debug, Clone)]
pub enum ColumnVec {
    /// All non-null values are `Value::Int`.
    Int { vals: Vec<i64>, valid: Bitmap },
    /// All non-null values are `Value::Float`.
    Float { vals: Vec<f64>, valid: Bitmap },
    /// All non-null values are `Value::Str`.
    Str { vals: Vec<Arc<str>>, valid: Bitmap },
    /// Mixed types: boxed values, exact round-trip.
    Mixed(Vec<Value>),
}

impl ColumnVec {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int { vals, .. } => vals.len(),
            ColumnVec::Float { vals, .. } => vals.len(),
            ColumnVec::Str { vals, .. } => vals.len(),
            ColumnVec::Mixed(vals) => vals.len(),
        }
    }

    /// True when the lane holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstruct the value at `i` (exactly the value that was stored).
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int { vals, valid } => {
                if valid.get(i) {
                    Value::Int(vals[i])
                } else {
                    Value::Null
                }
            }
            ColumnVec::Float { vals, valid } => {
                if valid.get(i) {
                    Value::Float(vals[i])
                } else {
                    Value::Null
                }
            }
            ColumnVec::Str { vals, valid } => {
                if valid.get(i) {
                    Value::Str(Arc::clone(&vals[i]))
                } else {
                    Value::Null
                }
            }
            ColumnVec::Mixed(vals) => vals[i].clone(),
        }
    }

    /// Feed the value at `i` into `state` exactly as `Value::hash` would —
    /// per-lane hashing must be indistinguishable from hashing the
    /// reconstructed [`Value`].
    #[inline]
    pub fn hash_value<H: Hasher>(&self, i: usize, state: &mut H) {
        match self {
            ColumnVec::Int { vals, valid } => {
                if valid.get(i) {
                    1u8.hash(state);
                    (vals[i] as f64).to_bits().hash(state);
                } else {
                    0u8.hash(state);
                }
            }
            ColumnVec::Float { vals, valid } => {
                if valid.get(i) {
                    1u8.hash(state);
                    vals[i].to_bits().hash(state);
                } else {
                    0u8.hash(state);
                }
            }
            ColumnVec::Str { vals, valid } => {
                if valid.get(i) {
                    2u8.hash(state);
                    vals[i].hash(state);
                } else {
                    0u8.hash(state);
                }
            }
            ColumnVec::Mixed(vals) => vals[i].hash(state),
        }
    }

    fn from_rows(rows: &[Row], col: usize) -> ColumnVec {
        // Sniff the lane type: a lane applies only when every non-null value
        // in the column has that exact type.
        let mut saw = (false, false, false); // (int, float, str)
        for r in rows {
            match &r.values()[col] {
                Value::Null => {}
                Value::Int(_) => saw.0 = true,
                Value::Float(_) => saw.1 = true,
                Value::Str(_) => saw.2 = true,
            }
        }
        let n = rows.len();
        match saw {
            (_, false, false) => {
                // Int lane also hosts all-null columns.
                let mut vals = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for r in rows {
                    match &r.values()[col] {
                        Value::Int(v) => {
                            vals.push(*v);
                            valid.push(true);
                        }
                        _ => {
                            vals.push(0);
                            valid.push(false);
                        }
                    }
                }
                ColumnVec::Int { vals, valid }
            }
            (false, true, false) => {
                let mut vals = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for r in rows {
                    match &r.values()[col] {
                        Value::Float(v) => {
                            vals.push(*v);
                            valid.push(true);
                        }
                        _ => {
                            vals.push(0.0);
                            valid.push(false);
                        }
                    }
                }
                ColumnVec::Float { vals, valid }
            }
            (false, false, true) => {
                let empty: Arc<str> = Arc::from("");
                let mut vals = Vec::with_capacity(n);
                let mut valid = Bitmap::with_capacity(n);
                for r in rows {
                    match &r.values()[col] {
                        Value::Str(s) => {
                            vals.push(Arc::clone(s));
                            valid.push(true);
                        }
                        _ => {
                            vals.push(Arc::clone(&empty));
                            valid.push(false);
                        }
                    }
                }
                ColumnVec::Str { vals, valid }
            }
            _ => ColumnVec::Mixed(rows.iter().map(|r| r.values()[col].clone()).collect()),
        }
    }
}

/// A run of rows stored column-major with typed lanes.
#[derive(Debug, Clone)]
pub struct RowBatch {
    columns: Vec<ColumnVec>,
    rows: usize,
    bytes: usize,
}

impl RowBatch {
    /// Build a batch from uniform-arity rows. Rows with differing arity
    /// cannot be columnarized; callers keep those as row vectors.
    pub fn from_rows(rows: &[Row]) -> Option<RowBatch> {
        let arity = rows.first().map(Row::arity).unwrap_or(0);
        if rows.iter().any(|r| r.arity() != arity) {
            return None;
        }
        let columns = (0..arity).map(|c| ColumnVec::from_rows(rows, c)).collect();
        Some(RowBatch {
            columns,
            rows: rows.len(),
            bytes: rows.iter().map(Row::encoded_len).sum(),
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column lanes.
    pub fn columns(&self) -> &[ColumnVec] {
        &self.columns
    }

    /// One column lane.
    pub fn column(&self, idx: usize) -> &ColumnVec {
        &self.columns[idx]
    }

    /// Total row-codec bytes of the batch (identical to summing
    /// `Row::encoded_len` over the source rows) — keeps block accounting
    /// independent of the physical layout.
    pub fn encoded_bytes(&self) -> usize {
        self.bytes
    }

    /// Row-view shim: materialize row `i` exactly as it was stored.
    #[inline]
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value(i)).collect())
    }

    /// All rows, materialized.
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.rows).map(|i| self.row(i)).collect()
    }

    /// Hash row `i` on `attrs` — bit-identical to `hash_row_on` over the
    /// materialized row (same hasher, same per-value byte feed, same
    /// canonical attribute order).
    pub fn hash_row(&self, i: usize, attrs: &AttrSet) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for a in attrs.iter() {
            self.columns[a.index()].hash_value(i, &mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{row, AttrId};

    fn hash_row_reference(row: &Row, attrs: &AttrSet) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for a in attrs.iter() {
            row.get(a).hash(&mut h);
        }
        h.finish()
    }

    #[test]
    fn bitmap_push_get_count() {
        let mut b = Bitmap::with_capacity(130);
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(b.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
        assert!(!b.all_set());
        let mut all = Bitmap::with_capacity(65);
        for _ in 0..65 {
            all.push(true);
        }
        assert!(all.all_set());
    }

    #[test]
    fn typed_lanes_round_trip() {
        let rows = vec![
            row![1i64, 2.5f64, "a", 7],
            row![Value::Null, Value::Null, Value::Null, 1.5f64],
            row![-3i64, f64::NAN, "", "mixed"],
        ];
        let b = RowBatch::from_rows(&rows).unwrap();
        assert!(matches!(b.column(0), ColumnVec::Int { .. }));
        assert!(matches!(b.column(1), ColumnVec::Float { .. }));
        assert!(matches!(b.column(2), ColumnVec::Str { .. }));
        assert!(matches!(b.column(3), ColumnVec::Mixed(_)));
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&b.row(i), r);
        }
        assert_eq!(b.to_rows(), rows);
        assert_eq!(
            b.encoded_bytes(),
            rows.iter().map(Row::encoded_len).sum::<usize>()
        );
    }

    #[test]
    fn all_null_column_round_trips() {
        let rows = vec![row![Value::Null], row![Value::Null]];
        let b = RowBatch::from_rows(&rows).unwrap();
        assert_eq!(b.row(0), rows[0]);
        assert_eq!(b.row(1), rows[1]);
    }

    #[test]
    fn ragged_arity_refused() {
        let rows = vec![row![1], row![1, 2]];
        assert!(RowBatch::from_rows(&rows).is_none());
    }

    #[test]
    fn empty_batch() {
        let b = RowBatch::from_rows(&[]).unwrap();
        assert!(b.is_empty());
        assert_eq!(b.arity(), 0);
        assert_eq!(b.encoded_bytes(), 0);
    }

    #[test]
    fn lane_hash_matches_value_hash() {
        let rows = vec![
            row![1i64, 2.5f64, "a", 7],
            row![Value::Null, Value::Null, Value::Null, "s"],
            row![i64::MAX, -0.0f64, "", 2.0f64],
        ];
        let b = RowBatch::from_rows(&rows).unwrap();
        for attrs in [
            AttrSet::from_iter([AttrId::new(0)]),
            AttrSet::from_iter([AttrId::new(1), AttrId::new(2)]),
            AttrSet::from_iter([AttrId::new(0), AttrId::new(3)]),
        ] {
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(
                    b.hash_row(i, &attrs),
                    hash_row_reference(r, &attrs),
                    "row {i} attrs {attrs:?}"
                );
            }
        }
    }
}
