//! The spill-backed segment store — a buffer manager for the segments that
//! flow between operators.
//!
//! The paper's cost model (§4) runs every reorder step in `M` buffer pages
//! with everything else on disk, and Shi & Wang (arXiv:2007.10385) extend
//! the same discipline to window evaluation itself. This module is the
//! mechanism: a [`SegmentStore`] owns a ledger-governed pool of row bytes,
//! and every inter-operator segment lives in a [`SegmentHandle`] that is
//! transparently **memory-resident** (charged against the pool budget) or
//! **spilled** (written to the spill device). Operators read handles back as
//! streaming block iterators ([`SegmentReader`]), so a chain's physical
//! resident set is `O(pool budget + largest unit)` instead of `O(N)`.
//!
//! Metering is split deliberately:
//!
//! * pool spill traffic goes to [`PoolCounters`] — informational, never part
//!   of modeled time, because the paper's model does not price pipeline
//!   buffering. This keeps a chain's **modeled counters bit-identical**
//!   whether the pool is bounded or unbounded (the pre-store pipeline);
//! * residency is tracked in the store's internal ledger with high-water
//!   marks ([`StoreSnapshot::peak_resident_bytes`]), which is what the
//!   `memory_stress` suite asserts against `O(M + largest unit)`;
//! * operators that must hold a whole unit (an oversized window partition,
//!   an SS unit) register the buffer with [`SegmentStore::hold`], so forced
//!   over-budget residency is visible in the same high-water mark.

use crate::backend::SpillConfig;
use crate::block::blocks_for_bytes;
use crate::colblock::RowBatch;
use crate::cost::PoolCounters;
use crate::spill::{IoMeter, SpillFile, SpillMedium, SpillReader};
use std::sync::{Arc, Mutex};
use wf_common::{Result, Row, TraceSink};

/// Residency accounting (behind the store's mutex).
#[derive(Debug, Default)]
struct PoolState {
    used_bytes: usize,
    used_rows: usize,
    peak_bytes: usize,
    peak_rows: usize,
    /// High-water marks since the last [`SegmentStore::begin_concurrent_phase`]
    /// — what the parent itself held *while* a parallel phase's workers ran,
    /// the base the workers' peaks fold onto.
    phase_peak_bytes: usize,
    phase_peak_rows: usize,
    spilled_segments: u64,
    /// Per-shard high-water marks folded in by
    /// [`SegmentStore::absorb_concurrent`]: index `i` holds the largest peak
    /// any concurrent phase's worker `i` ever reached (elementwise max
    /// across phases). Empty until a parallel phase runs.
    worker_peak_bytes: Vec<usize>,
}

impl PoolState {
    #[inline]
    fn note_peaks(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.used_bytes);
        self.peak_rows = self.peak_rows.max(self.used_rows);
        self.phase_peak_bytes = self.phase_peak_bytes.max(self.used_bytes);
        self.phase_peak_rows = self.phase_peak_rows.max(self.used_rows);
    }
}

/// A snapshot of the store's residency and spill statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Bytes currently resident in the pool.
    pub resident_bytes: usize,
    /// Rows currently resident in the pool.
    pub resident_rows: usize,
    /// Maximum bytes ever resident simultaneously (including forced holds).
    pub peak_resident_bytes: usize,
    /// Maximum rows ever resident simultaneously.
    pub peak_resident_rows: usize,
    /// Segments that overflowed the pool and were spilled.
    pub spilled_segments: u64,
    /// Pool blocks written to the spill device.
    pub spill_blocks_written: u64,
    /// Pool blocks read back from the spill device.
    pub spill_blocks_read: u64,
}

impl StoreSnapshot {
    /// Peak residency in whole blocks (ceiling).
    pub fn peak_resident_blocks(&self) -> u64 {
        blocks_for_bytes(self.peak_resident_bytes)
    }
}

/// The buffer manager. Shared (`Arc`) by every operator of a chain; cheap
/// interior locking (the lock guards a handful of counters, never I/O).
pub struct SegmentStore {
    /// Pool budget in bytes; `None` means unbounded (the pre-store pipeline:
    /// every segment stays resident and nothing ever pool-spills).
    budget: Option<usize>,
    /// Backend + compression + read-ahead configuration for pool spill
    /// files. Shared (cloned) into every sub-account, so one store's whole
    /// tree reports into the same backend counters.
    spill: SpillConfig,
    pool_io: Arc<PoolCounters>,
    state: Mutex<PoolState>,
    /// Set only on accounts created by [`SegmentStore::pooled_sub_store`]:
    /// every charge/release is mirrored up the chain so the root ledger's
    /// high-water mark tracks the true combined residency of all live
    /// sub-accounts, while spill *decisions* keep consulting only the local
    /// budget (never the parent's occupancy) — which is what keeps each
    /// query's placement and counters deterministic under concurrency.
    parent: Option<Arc<SegmentStore>>,
    /// Span recorder for pool spill-out events; the shared no-op sink until
    /// [`SegmentStore::set_trace`] swaps it in. Behind its own mutex so the
    /// store stays `Sync` without widening the state lock; it is read once
    /// per *segment overflow*, never per row.
    trace: Mutex<Arc<TraceSink>>,
}

impl SegmentStore {
    /// A store with the given pool budget in blocks (`None` = unbounded)
    /// on the legacy two-way medium selector.
    pub fn new(budget_blocks: Option<u64>, medium: SpillMedium) -> Arc<Self> {
        Self::with_spill(budget_blocks, medium.config())
    }

    /// A store with the given pool budget in blocks (`None` = unbounded)
    /// spilling through the given backend configuration.
    pub fn with_spill(budget_blocks: Option<u64>, spill: SpillConfig) -> Arc<Self> {
        Arc::new(SegmentStore {
            budget: budget_blocks.map(|b| b as usize * crate::block::BLOCK_SIZE),
            spill,
            pool_io: Arc::new(PoolCounters::new()),
            state: Mutex::new(PoolState::default()),
            parent: None,
            trace: Mutex::new(TraceSink::disabled()),
        })
    }

    /// The spill configuration this store (and its sub-accounts) use.
    pub fn spill_config(&self) -> &SpillConfig {
        &self.spill
    }

    /// Attach a span recorder; pool spill-outs record `spill` spans on it.
    /// Tracing never alters charging, spill decisions, or counters.
    pub fn set_trace(&self, trace: Arc<TraceSink>) {
        *self.trace.lock().expect("trace lock") = trace;
    }

    /// The store's current span recorder.
    pub fn trace(&self) -> Arc<TraceSink> {
        self.trace.lock().expect("trace lock").clone()
    }

    /// Pool budget in bytes (`None` = unbounded).
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget
    }

    /// Current statistics.
    pub fn snapshot(&self) -> StoreSnapshot {
        let s = self.state.lock().expect("store lock");
        StoreSnapshot {
            resident_bytes: s.used_bytes,
            resident_rows: s.used_rows,
            peak_resident_bytes: s.peak_bytes,
            peak_resident_rows: s.peak_rows,
            spilled_segments: s.spilled_segments,
            spill_blocks_written: self.pool_io.blocks_written(),
            spill_blocks_read: self.pool_io.blocks_read(),
        }
    }

    /// Charge residency if it still fits the budget; one lock acquisition,
    /// so concurrent builders on a shared store can never jointly overshoot
    /// (which would also make the high-water mark timing-dependent).
    fn try_charge(&self, bytes: usize, rows: usize) -> bool {
        {
            let mut s = self.state.lock().expect("store lock");
            if let Some(b) = self.budget {
                if s.used_bytes + bytes > b {
                    return false;
                }
            }
            s.used_bytes += bytes;
            s.used_rows += rows;
            s.note_peaks();
        }
        // The admission decision is strictly local; the parent ledger only
        // *observes* the residency (see `pooled_sub_store`). The local lock
        // is dropped first — locks are never held across the chain.
        if let Some(p) = &self.parent {
            p.charge(bytes, rows);
        }
        true
    }

    /// Charge residency (unconditional; the caller decided).
    fn charge(&self, bytes: usize, rows: usize) {
        {
            let mut s = self.state.lock().expect("store lock");
            s.used_bytes += bytes;
            s.used_rows += rows;
            s.note_peaks();
        }
        if let Some(p) = &self.parent {
            p.charge(bytes, rows);
        }
    }

    /// Release residency previously charged.
    fn release(&self, bytes: usize, rows: usize) {
        {
            let mut s = self.state.lock().expect("store lock");
            s.used_bytes = s.used_bytes.saturating_sub(bytes);
            s.used_rows = s.used_rows.saturating_sub(rows);
        }
        if let Some(p) = &self.parent {
            p.release(bytes, rows);
        }
    }

    fn note_spill(&self) {
        self.state.lock().expect("store lock").spilled_segments += 1;
        if let Some(p) = &self.parent {
            p.note_spill();
        }
    }

    /// A per-worker **ledger sub-account** of this store: an independent
    /// residency ledger with its own budget of `budget_blocks` (`None` or an
    /// unbounded parent → unbounded child) that shares the parent's spill
    /// medium and pool-I/O counters.
    ///
    /// Parallel chains give every worker one sub-account so that spill
    /// decisions depend only on that worker's own deterministic usage —
    /// never on how the OS interleaved the other workers — which is what
    /// keeps a parallel execution's pool counters and segment placement
    /// bit-identical across thread counts. The parent folds the workers'
    /// high-water marks back in with [`SegmentStore::absorb_concurrent`].
    pub fn sub_store(self: &Arc<Self>, budget_blocks: Option<u64>) -> Arc<SegmentStore> {
        let budget = match (self.budget, budget_blocks) {
            // An unbounded parent is the pre-store reference configuration:
            // children must not spill either, or bounded-vs-unbounded
            // equivalence would break for parallel chains.
            (None, _) => None,
            (Some(_), None) => None,
            (Some(_), Some(b)) => Some(b.max(1) as usize * crate::block::BLOCK_SIZE),
        };
        Arc::new(SegmentStore {
            budget,
            spill: self.spill.clone(),
            pool_io: Arc::clone(&self.pool_io),
            state: Mutex::new(PoolState::default()),
            parent: None,
            trace: Mutex::new(self.trace()),
        })
    }

    /// A **pooled** ledger sub-account: like [`SegmentStore::sub_store`] it
    /// has an independent budget so its spill decisions depend only on its
    /// own deterministic usage, but unlike a worker sub-account every
    /// charge/release (and spill event) is *forwarded* up to this store, so
    /// the shared ledger's residency and high-water mark genuinely track the
    /// combined live footprint of all concurrent sub-accounts.
    ///
    /// This is the cross-**query** flavor of the PR 5 mechanism: the
    /// admission governor hands each admitted query one pooled sub-account
    /// budgeted from the global pool, so `Σ per-query budgets ≤ pool` bounds
    /// global residency to `O(pool + largest unit)` while each query's
    /// counters stay bit-identical to a solo run under the same per-query
    /// budget. Do **not** use this for parallel workers *inside* a chain —
    /// those fold their peaks back via [`SegmentStore::absorb_concurrent`],
    /// and forwarding would double-count them.
    ///
    /// The child's budget follows the requested `budget_blocks` verbatim
    /// (`None` = unbounded child) — an unbounded *parent* here only means
    /// the global ledger is purely observational.
    pub fn pooled_sub_store(self: &Arc<Self>, budget_blocks: Option<u64>) -> Arc<SegmentStore> {
        Arc::new(SegmentStore {
            budget: budget_blocks.map(|b| b.max(1) as usize * crate::block::BLOCK_SIZE),
            spill: self.spill.clone(),
            pool_io: Arc::clone(&self.pool_io),
            state: Mutex::new(PoolState::default()),
            parent: Some(Arc::clone(self)),
            trace: Mutex::new(self.trace()),
        })
    }

    /// Mark the start of a concurrent (parallel-worker) phase: the phase
    /// watermark resets to the current residency, so the next
    /// [`SegmentStore::absorb_concurrent`] folds the workers' peaks onto
    /// exactly what the parent held *during* this phase — an upper bound
    /// on the true instantaneous combined peak (parent-in-phase +
    /// concurrent workers) that neither understates overlap nor compounds
    /// across sequential parallel phases.
    pub fn begin_concurrent_phase(&self) {
        let mut s = self.state.lock().expect("store lock");
        s.phase_peak_bytes = s.used_bytes;
        s.phase_peak_rows = s.used_rows;
    }

    /// Fold the final snapshots of concurrent sub-accounts back into this
    /// store, **deterministically**: the high-water mark takes
    /// `max(own peak, in-phase peak + Σ worker peaks)`. Parent residency
    /// at any instant of the workers' run never exceeded the in-phase
    /// watermark (see [`SegmentStore::begin_concurrent_phase`]), so the
    /// fold bounds the true combined peak without depending on how worker
    /// lifetimes overlapped — and without accumulating across phases.
    /// Spilled-segment counts are summed; pool block I/O needs no folding
    /// because sub-accounts share the parent's counters.
    ///
    /// Call after the workers' output handles have been consumed (their
    /// resident charges released), in a fixed worker order.
    pub fn absorb_concurrent(&self, workers: &[StoreSnapshot]) {
        let peak_bytes: usize = workers.iter().map(|w| w.peak_resident_bytes).sum();
        let peak_rows: usize = workers.iter().map(|w| w.peak_resident_rows).sum();
        let spilled: u64 = workers.iter().map(|w| w.spilled_segments).sum();
        let mut s = self.state.lock().expect("store lock");
        s.peak_bytes = s.peak_bytes.max(s.phase_peak_bytes + peak_bytes);
        s.peak_rows = s.peak_rows.max(s.phase_peak_rows + peak_rows);
        // The phase is over; rebase so a later phase folds onto its own
        // watermark, not this one's.
        s.phase_peak_bytes = s.used_bytes;
        s.phase_peak_rows = s.used_rows;
        s.spilled_segments += spilled;
        // Keep the per-shard peaks visible for observability (EXPLAIN
        // ANALYZE / regress): elementwise max across phases by shard index.
        if s.worker_peak_bytes.len() < workers.len() {
            s.worker_peak_bytes.resize(workers.len(), 0);
        }
        for (slot, w) in s.worker_peak_bytes.iter_mut().zip(workers) {
            *slot = (*slot).max(w.peak_resident_bytes);
        }
    }

    /// Per-shard residency peaks recorded by concurrent phases, in whole
    /// blocks by shard index (empty when no parallel phase ran). The fold in
    /// [`SegmentStore::absorb_concurrent`] sums these onto the parent's
    /// in-phase watermark; this accessor exposes the addends so EXPLAIN
    /// ANALYZE and the regress table can show how evenly the pool budget was
    /// used across workers.
    pub fn worker_peak_blocks(&self) -> Vec<u64> {
        self.state
            .lock()
            .expect("store lock")
            .worker_peak_bytes
            .iter()
            .map(|&b| blocks_for_bytes(b))
            .collect()
    }

    /// Start building a segment: rows pushed stay resident while the pool
    /// budget allows and overflow transparently to the spill device.
    pub fn builder(self: &Arc<Self>) -> SegmentBuilder {
        SegmentBuilder {
            store: Arc::clone(self),
            rows: Vec::new(),
            bytes: 0,
            spill: None,
        }
    }

    /// Admit an already-materialized segment: resident if it fits the pool,
    /// spilled otherwise.
    pub fn admit(self: &Arc<Self>, rows: Vec<Row>) -> Result<SegmentHandle> {
        let mut b = self.builder();
        for row in rows {
            b.push(row)?;
        }
        b.finish()
    }

    /// A handle over shared base-table rows: zero-copy and charged to
    /// nothing — the heap table is modeled as *on disk* (its scan is charged
    /// separately), so it never counts toward pipeline residency.
    pub fn shared(rows: Arc<Vec<Row>>) -> SegmentHandle {
        SegmentHandle::Shared { rows }
    }

    /// A handle over a shared columnar batch: zero-copy and uncharged for
    /// the same reason as [`SegmentStore::shared`] — the base table is
    /// modeled as on-disk, whatever its in-memory layout.
    pub fn shared_batch(batch: Arc<RowBatch>) -> SegmentHandle {
        SegmentHandle::SharedBatch { batch }
    }

    /// Register `bytes`/`rows` of operator-held unit memory (e.g. one
    /// buffered window partition) with the residency ledger. The charge may
    /// exceed the budget — a unit must be held *somewhere* — and is released
    /// when the returned guard drops; the high-water mark records it either
    /// way, which is exactly the `largest unit` term of the residency bound.
    pub fn hold(self: &Arc<Self>, bytes: usize, rows: usize) -> ResidencyHold {
        self.charge(bytes, rows);
        ResidencyHold {
            store: Arc::clone(self),
            bytes,
            rows,
        }
    }

    /// Row-granular residency tracking for ring-buffer evaluation: the
    /// charge grows as rows enter the ring and shrinks as they age out, so
    /// the ledger follows the live ring occupancy — `O(frame)`, never a
    /// whole buffered unit (contrast [`SegmentStore::hold`], whose charge
    /// only grows). Remaining charge is released when the guard drops.
    pub fn ring_charge(self: &Arc<Self>) -> RingCharge {
        RingCharge {
            store: Arc::clone(self),
            bytes: 0,
            rows: 0,
        }
    }
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("budget", &self.budget)
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// RAII charge of operator-held unit memory (see [`SegmentStore::hold`]).
pub struct ResidencyHold {
    store: Arc<SegmentStore>,
    bytes: usize,
    rows: usize,
}

impl ResidencyHold {
    /// Grow the hold by one more row of `bytes` bytes.
    pub fn grow(&mut self, bytes: usize, rows: usize) {
        self.store.charge(bytes, rows);
        self.bytes += bytes;
        self.rows += rows;
    }
}

impl Drop for ResidencyHold {
    fn drop(&mut self) {
        self.store.release(self.bytes, self.rows);
    }
}

/// Shrinkable residency charge backing a ring buffer (see
/// [`SegmentStore::ring_charge`]).
pub struct RingCharge {
    store: Arc<SegmentStore>,
    bytes: usize,
    rows: usize,
}

impl RingCharge {
    /// A row of `bytes` bytes entered the ring.
    pub fn enter(&mut self, bytes: usize) {
        self.store.charge(bytes, 1);
        self.bytes += bytes;
        self.rows += 1;
    }

    /// A row of `bytes` bytes aged out of the ring.
    pub fn leave(&mut self, bytes: usize) {
        let bytes = bytes.min(self.bytes);
        let rows = usize::from(self.rows > 0);
        self.store.release(bytes, rows);
        self.bytes -= bytes;
        self.rows -= rows;
    }
}

impl Drop for RingCharge {
    fn drop(&mut self) {
        self.store.release(self.bytes, self.rows);
    }
}

/// Incrementally builds one segment. Rows are buffered resident until the
/// pool would overflow; from then on the whole segment (buffered prefix
/// first) goes to a pool spill file.
pub struct SegmentBuilder {
    store: Arc<SegmentStore>,
    rows: Vec<Row>,
    bytes: usize,
    spill: Option<SpillFile>,
}

impl SegmentBuilder {
    /// Append one row.
    pub fn push(&mut self, row: Row) -> Result<()> {
        if let Some(file) = &mut self.spill {
            file.push(&row)?;
            return Ok(());
        }
        let bytes = row.encoded_len();
        if self.store.try_charge(bytes, 1) {
            self.bytes += bytes;
            self.rows.push(row);
            return Ok(());
        }
        // Overflow: move the buffered prefix and this row to the device.
        let buffered = self.rows.len();
        let trace = self.store.trace();
        let _span = trace.span_with("spill", || format!("pool.spill_out prefix_rows={buffered}"));
        let mut file =
            SpillFile::with_config(&self.store.spill, IoMeter::Pool(self.store.pool_io.clone()))?;
        for r in self.rows.drain(..) {
            file.push(&r)?;
        }
        self.store
            .release(std::mem::take(&mut self.bytes), buffered);
        file.push(&row)?;
        self.store.note_spill();
        self.spill = Some(file);
        Ok(())
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        match &self.spill {
            Some(f) => f.row_count() as usize,
            None => self.rows.len(),
        }
    }

    /// True when nothing was appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish the segment.
    pub fn finish(mut self) -> Result<SegmentHandle> {
        match self.spill.take() {
            Some(file) => {
                let rows = file.row_count();
                Ok(SegmentHandle::Spilled {
                    reader: file.into_reader()?,
                    rows,
                })
            }
            None => {
                // Hand the charge over to the handle; the builder's Drop
                // then releases nothing.
                let rows = std::mem::take(&mut self.rows);
                let bytes = std::mem::take(&mut self.bytes);
                Ok(SegmentHandle::Resident(ResidentSeg {
                    store: Arc::clone(&self.store),
                    bytes,
                    row_count: rows.len(),
                    rows,
                }))
            }
        }
    }
}

impl Drop for SegmentBuilder {
    /// A builder abandoned mid-segment (an error unwinding through an
    /// operator) must not leak its resident charge.
    fn drop(&mut self) {
        self.store.release(self.bytes, self.rows.len());
        self.bytes = 0;
    }
}

/// A memory-resident segment; its bytes are charged to the pool until the
/// handle is consumed or dropped.
pub struct ResidentSeg {
    store: Arc<SegmentStore>,
    bytes: usize,
    row_count: usize,
    rows: Vec<Row>,
}

impl Drop for ResidentSeg {
    fn drop(&mut self) {
        self.store.release(self.bytes, self.row_count);
        self.bytes = 0;
        self.row_count = 0;
    }
}

/// One segment managed by the store: resident in the pool, spilled to the
/// device, or a zero-copy view of shared base-table rows. Single-consumer:
/// reading or materializing consumes the handle.
pub enum SegmentHandle {
    /// Resident in the pool (budget-charged; released on consumption/drop).
    Resident(ResidentSeg),
    /// A view over shared rows (the heap table; modeled as on-disk, never
    /// pool-charged).
    Shared { rows: Arc<Vec<Row>> },
    /// A view over a shared columnar batch (the heap table's column cache;
    /// modeled as on-disk like [`SegmentHandle::Shared`], never
    /// pool-charged). Operators with per-column fast paths read the lanes
    /// directly; everyone else goes through the row-view shim.
    SharedBatch { batch: Arc<RowBatch> },
    /// Spilled to the pool device; read back block at a time.
    Spilled { reader: SpillReader, rows: u64 },
}

impl SegmentHandle {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            SegmentHandle::Resident(r) => r.rows.len(),
            SegmentHandle::Shared { rows } => rows.len(),
            SegmentHandle::SharedBatch { batch } => batch.len(),
            SegmentHandle::Spilled { rows, .. } => *rows as usize,
        }
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the segment lives on the spill device.
    pub fn is_spilled(&self) -> bool {
        matches!(self, SegmentHandle::Spilled { .. })
    }

    /// The shared columnar batch behind this handle, if it has one —
    /// operators with per-column fast paths peek here before falling back
    /// to the row stream.
    pub fn as_batch(&self) -> Option<&Arc<RowBatch>> {
        match self {
            SegmentHandle::SharedBatch { batch } => Some(batch),
            _ => None,
        }
    }

    /// Materialize all rows (charges pool reads for a spilled segment;
    /// releases the pool charge of a resident one).
    pub fn into_rows(self) -> Result<Vec<Row>> {
        match self {
            SegmentHandle::Resident(mut r) => {
                let rows = std::mem::take(&mut r.rows);
                r.store.release(
                    std::mem::take(&mut r.bytes),
                    std::mem::take(&mut r.row_count),
                );
                Ok(rows)
            }
            SegmentHandle::Shared { rows } => {
                Ok(Arc::try_unwrap(rows).unwrap_or_else(|a| a.as_ref().clone()))
            }
            SegmentHandle::SharedBatch { batch } => Ok(batch.to_rows()),
            SegmentHandle::Spilled { mut reader, .. } => reader.read_all(),
        }
    }

    /// Stream the rows front to back, one block at a time.
    pub fn read(self) -> SegmentReader {
        match self {
            SegmentHandle::Resident(mut r) => {
                let rows = std::mem::take(&mut r.rows);
                SegmentReader::Resident {
                    iter: rows.into_iter(),
                    _guard: r,
                }
            }
            SegmentHandle::Shared { rows } => SegmentReader::Shared { rows, next: 0 },
            SegmentHandle::SharedBatch { batch } => SegmentReader::SharedBatch { batch, next: 0 },
            SegmentHandle::Spilled { reader, .. } => SegmentReader::Spilled(reader),
        }
    }
}

impl std::fmt::Debug for SegmentHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            SegmentHandle::Resident(_) => "resident",
            SegmentHandle::Shared { .. } => "shared",
            SegmentHandle::SharedBatch { .. } => "shared-batch",
            SegmentHandle::Spilled { .. } => "spilled",
        };
        write!(f, "SegmentHandle<{kind}, {} rows>", self.len())
    }
}

/// Streaming reader over a [`SegmentHandle`]. Resident segments keep their
/// pool charge until the reader drops (the rows are still in memory while
/// being iterated); spilled segments charge pool reads block by block.
pub enum SegmentReader {
    /// Rows held in the pool; `_guard` releases the charge on drop.
    Resident {
        iter: std::vec::IntoIter<Row>,
        _guard: ResidentSeg,
    },
    /// Shared base-table rows, cloned lazily.
    Shared { rows: Arc<Vec<Row>>, next: usize },
    /// Shared columnar batch, materialized through the row-view shim.
    SharedBatch { batch: Arc<RowBatch>, next: usize },
    /// Spilled rows decoded block at a time.
    Spilled(SpillReader),
}

impl SegmentReader {
    /// Next row, or `None` at the end.
    pub fn next_row(&mut self) -> Result<Option<Row>> {
        match self {
            SegmentReader::Resident { iter, .. } => Ok(iter.next()),
            SegmentReader::Shared { rows, next } => {
                let out = rows.get(*next).cloned();
                *next += 1;
                Ok(out)
            }
            SegmentReader::SharedBatch { batch, next } => {
                let out = (*next < batch.len()).then(|| batch.row(*next));
                *next += 1;
                Ok(out)
            }
            SegmentReader::Spilled(r) => r.next_row(),
        }
    }
}

impl Iterator for SegmentReader {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Result<Row>> {
        self.next_row().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BLOCK_SIZE;
    use wf_common::row;

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| row![i as i64, "padding-padding-padding"])
            .collect()
    }

    #[test]
    fn small_segment_stays_resident() {
        let store = SegmentStore::new(Some(4), SpillMedium::Simulated);
        let h = store.admit(rows(10)).unwrap();
        assert!(!h.is_spilled());
        assert_eq!(h.len(), 10);
        let snap = store.snapshot();
        assert!(snap.resident_bytes > 0);
        assert_eq!(snap.resident_rows, 10);
        assert_eq!(snap.spill_blocks_written, 0);
        let back = h.into_rows().unwrap();
        assert_eq!(back, rows(10));
        drop(back);
        // Charge released at consumption; rows-vec materialization keeps
        // the byte charge until the handle dropped, which it has.
        assert_eq!(store.snapshot().resident_bytes, 0);
    }

    #[test]
    fn oversized_segment_spills_and_round_trips() {
        let store = SegmentStore::new(Some(1), SpillMedium::Simulated);
        let input = rows(2000); // far beyond one block
        let h = store.admit(input.clone()).unwrap();
        assert!(h.is_spilled());
        assert_eq!(h.len(), 2000);
        let snap = store.snapshot();
        assert_eq!(snap.spilled_segments, 1);
        assert!(snap.spill_blocks_written > 0);
        // The resident prefix was released when the segment overflowed.
        assert!(snap.resident_bytes <= BLOCK_SIZE);
        let back = h.into_rows().unwrap();
        assert_eq!(back, input);
        let snap = store.snapshot();
        assert_eq!(snap.spill_blocks_read, snap.spill_blocks_written);
    }

    #[test]
    fn unbounded_store_never_spills() {
        let store = SegmentStore::new(None, SpillMedium::Simulated);
        let h = store.admit(rows(5000)).unwrap();
        assert!(!h.is_spilled());
        assert_eq!(store.snapshot().spill_blocks_written, 0);
        assert!(store.snapshot().peak_resident_bytes > BLOCK_SIZE);
    }

    #[test]
    fn streaming_reader_yields_rows_in_order() {
        let store = SegmentStore::new(Some(1), SpillMedium::Simulated);
        for n in [0usize, 3, 1500] {
            let h = store.admit(rows(n)).unwrap();
            let mut got = Vec::new();
            let mut r = h.read();
            while let Some(row) = r.next_row().unwrap() {
                got.push(row);
            }
            assert_eq!(got, rows(n), "n={n}");
        }
    }

    #[test]
    fn shared_handle_is_uncharged() {
        let base = Arc::new(rows(100));
        let store = SegmentStore::new(Some(1), SpillMedium::Simulated);
        let h = SegmentStore::shared(Arc::clone(&base));
        assert_eq!(h.len(), 100);
        assert!(!h.is_spilled());
        assert_eq!(store.snapshot().resident_bytes, 0);
        assert_eq!(h.into_rows().unwrap(), *base);
    }

    #[test]
    fn shared_batch_handle_is_uncharged_and_round_trips() {
        let store = SegmentStore::new(Some(1), SpillMedium::Simulated);
        let base = rows(100);
        let batch = Arc::new(RowBatch::from_rows(&base).unwrap());
        let h = SegmentStore::shared_batch(Arc::clone(&batch));
        assert_eq!(h.len(), 100);
        assert!(!h.is_spilled());
        assert!(h.as_batch().is_some());
        assert_eq!(store.snapshot().resident_bytes, 0);
        let mut reader = h.read();
        let mut streamed = Vec::new();
        while let Some(r) = reader.next_row().unwrap() {
            streamed.push(r);
        }
        assert_eq!(streamed, base);
        let h2 = SegmentStore::shared_batch(batch);
        assert_eq!(h2.into_rows().unwrap(), base);
    }

    #[test]
    fn hold_tracks_forced_unit_memory() {
        let store = SegmentStore::new(Some(1), SpillMedium::Simulated);
        {
            let mut g = store.hold(10 * BLOCK_SIZE, 500);
            g.grow(BLOCK_SIZE, 10);
            let snap = store.snapshot();
            assert_eq!(snap.resident_bytes, 11 * BLOCK_SIZE);
            assert_eq!(snap.resident_rows, 510);
        }
        let snap = store.snapshot();
        assert_eq!(snap.resident_bytes, 0);
        assert_eq!(snap.peak_resident_bytes, 11 * BLOCK_SIZE);
        assert_eq!(snap.peak_resident_rows, 510);
    }

    #[test]
    fn ring_charge_follows_occupancy() {
        let store = SegmentStore::new(Some(1), SpillMedium::Simulated);
        {
            let mut ring = store.ring_charge();
            for _ in 0..4 {
                ring.enter(100);
            }
            assert_eq!(store.snapshot().resident_bytes, 400);
            assert_eq!(store.snapshot().resident_rows, 4);
            ring.leave(100);
            ring.leave(100);
            // The ledger tracks the live ring, not its high point …
            assert_eq!(store.snapshot().resident_bytes, 200);
            assert_eq!(store.snapshot().resident_rows, 2);
        }
        // … and the guard releases the remainder on drop.
        let snap = store.snapshot();
        assert_eq!(snap.resident_bytes, 0);
        assert_eq!(snap.resident_rows, 0);
        assert_eq!(snap.peak_resident_bytes, 400);
        assert_eq!(snap.peak_resident_rows, 4);
    }

    #[test]
    fn abandoned_builder_releases_its_charge() {
        let store = SegmentStore::new(Some(64), SpillMedium::Simulated);
        {
            let mut b = store.builder();
            for r in rows(50) {
                b.push(r).unwrap();
            }
            assert!(store.snapshot().resident_bytes > 0);
            // Dropped without finish() — an error unwinding mid-segment.
        }
        let snap = store.snapshot();
        assert_eq!(snap.resident_bytes, 0);
        assert_eq!(snap.resident_rows, 0);
    }

    #[test]
    fn sub_store_has_independent_budget_and_shared_pool_io() {
        let parent = SegmentStore::new(Some(64), SpillMedium::Simulated);
        let child = parent.sub_store(Some(1));
        // Child spills by its own 1-block budget even though the parent has
        // plenty of room…
        let h = child.admit(rows(2000)).unwrap();
        assert!(h.is_spilled());
        assert_eq!(parent.snapshot().resident_bytes, 0);
        // …and its pool traffic shows up in the parent's shared counters.
        assert!(parent.snapshot().spill_blocks_written > 0);
        assert_eq!(
            parent.snapshot().spill_blocks_written,
            child.snapshot().spill_blocks_written
        );
        drop(h);
        // An unbounded parent hands out unbounded children regardless of the
        // requested budget (the pre-store reference configuration).
        let unbounded = SegmentStore::new(None, SpillMedium::Simulated);
        let uchild = unbounded.sub_store(Some(1));
        let h2 = uchild.admit(rows(2000)).unwrap();
        assert!(!h2.is_spilled());
    }

    #[test]
    fn absorb_concurrent_sums_worker_peaks() {
        let parent = SegmentStore::new(Some(64), SpillMedium::Simulated);
        let a = parent.sub_store(Some(8));
        let b = parent.sub_store(Some(8));
        let ha = a.admit(rows(30)).unwrap();
        let hb = b.admit(rows(50)).unwrap();
        let (pa, pb) = (a.snapshot(), b.snapshot());
        drop(ha);
        drop(hb);
        // Parent residency that peaked *during* the phase counts toward
        // the fold even if released before absorb time.
        parent.begin_concurrent_phase();
        let own = parent.admit(rows(10)).unwrap();
        drop(own);
        parent.absorb_concurrent(&[a.snapshot(), b.snapshot()]);
        let snap = parent.snapshot();
        assert_eq!(
            snap.peak_resident_rows,
            10 + pa.peak_resident_rows + pb.peak_resident_rows
        );
        assert_eq!(parent.snapshot().resident_rows, 0);
    }

    #[test]
    fn worker_peaks_are_recorded_per_shard() {
        let parent = SegmentStore::new(Some(64), SpillMedium::Simulated);
        assert!(parent.worker_peak_blocks().is_empty(), "no phase yet");
        parent.begin_concurrent_phase();
        let a = parent.sub_store(Some(8));
        let b = parent.sub_store(Some(8));
        let ha = a.admit(rows(30)).unwrap();
        let hb = b.admit(rows(500)).unwrap();
        drop(ha);
        drop(hb);
        parent.absorb_concurrent(&[a.snapshot(), b.snapshot()]);
        let peaks = parent.worker_peak_blocks();
        assert_eq!(peaks.len(), 2);
        assert!(peaks[1] > peaks[0], "shard 1 held far more: {peaks:?}");
        // A later, smaller phase must not shrink the recorded peaks.
        parent.begin_concurrent_phase();
        let c = parent.sub_store(Some(8));
        let hc = c.admit(rows(1)).unwrap();
        drop(hc);
        parent.absorb_concurrent(&[c.snapshot()]);
        assert_eq!(parent.worker_peak_blocks(), peaks);
    }

    #[test]
    fn sub_store_inherits_trace_sink() {
        let parent = SegmentStore::new(Some(64), SpillMedium::Simulated);
        assert!(!parent.trace().is_enabled());
        parent.set_trace(TraceSink::enabled());
        assert!(parent.trace().is_enabled());
        assert!(parent.sub_store(Some(8)).trace().is_enabled());
    }

    #[test]
    fn pool_spill_out_records_a_span() {
        let store = SegmentStore::new(Some(1), SpillMedium::Simulated);
        let sink = TraceSink::enabled();
        store.set_trace(Arc::clone(&sink));
        let h = store.admit(rows(2000)).unwrap();
        assert!(h.is_spilled());
        let records = sink.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].cat, "spill");
        assert!(records[0].name.starts_with("pool.spill_out"));
        assert_eq!(sink.open_spans(), 0);
    }

    /// Sequential parallel phases fold onto their own watermarks: the
    /// reported peak is the max over phases, never their sum.
    #[test]
    fn absorb_concurrent_does_not_compound_across_phases() {
        let parent = SegmentStore::new(Some(64), SpillMedium::Simulated);
        let run_phase = |n: usize| {
            parent.begin_concurrent_phase();
            let w = parent.sub_store(Some(8));
            let h = w.admit(rows(n)).unwrap();
            drop(h);
            parent.absorb_concurrent(&[w.snapshot()]);
        };
        run_phase(40);
        let after_one = parent.snapshot().peak_resident_rows;
        run_phase(40);
        assert_eq!(
            parent.snapshot().peak_resident_rows,
            after_one,
            "identical sequential phases must not double the peak"
        );
        run_phase(60);
        assert!(parent.snapshot().peak_resident_rows > after_one);
        assert_eq!(parent.snapshot().peak_resident_rows, 60);
    }

    #[test]
    fn pooled_sub_store_forwards_residency_to_parent() {
        let pool = SegmentStore::new(Some(64), SpillMedium::Simulated);
        let a = pool.pooled_sub_store(Some(8));
        let b = pool.pooled_sub_store(Some(8));
        let ha = a.admit(rows(30)).unwrap();
        let hb = b.admit(rows(50)).unwrap();
        // The shared ledger sees the *combined* live residency…
        let snap = pool.snapshot();
        assert_eq!(snap.resident_rows, 80);
        assert_eq!(
            snap.resident_bytes,
            a.snapshot().resident_bytes + b.snapshot().resident_bytes
        );
        assert_eq!(snap.peak_resident_rows, 80);
        drop(ha);
        drop(hb);
        // …and every release flows back.
        let snap = pool.snapshot();
        assert_eq!(snap.resident_rows, 0);
        assert_eq!(snap.resident_bytes, 0);
        assert_eq!(snap.peak_resident_rows, 80);
    }

    #[test]
    fn pooled_sub_store_spills_by_local_budget_only() {
        // A roomy pool must not save a sub-account from its own budget:
        // spill decisions depend only on the account's deterministic usage,
        // never on how much of the pool other queries happen to occupy.
        let pool = SegmentStore::new(Some(10_000), SpillMedium::Simulated);
        let q = pool.pooled_sub_store(Some(1));
        let h = q.admit(rows(2000)).unwrap();
        assert!(h.is_spilled());
        assert_eq!(q.snapshot().spilled_segments, 1);
        // The spill event is mirrored into the shared ledger…
        assert_eq!(pool.snapshot().spilled_segments, 1);
        // …as is the pool I/O (shared counters, as with worker accounts).
        assert!(pool.snapshot().spill_blocks_written > 0);
        // The overflowed prefix's charge was released through to the parent.
        drop(h);
        assert_eq!(pool.snapshot().resident_bytes, 0);
    }

    #[test]
    fn pooled_sub_store_counters_do_not_depend_on_pool_occupancy() {
        // The same input through the same per-query budget must place
        // segments identically whether the pool is empty or mostly occupied
        // by a neighbor — the bit-identity contract under concurrency.
        let solo_pool = SegmentStore::new(Some(64), SpillMedium::Simulated);
        let solo = solo_pool.pooled_sub_store(Some(2));
        let h1 = solo.admit(rows(400)).unwrap();
        let solo_snap = solo.snapshot();
        let solo_spilled = h1.is_spilled();
        drop(h1);

        let busy_pool = SegmentStore::new(Some(64), SpillMedium::Simulated);
        let neighbor = busy_pool.pooled_sub_store(Some(60));
        let _big = neighbor.admit(rows(3000)).unwrap();
        let q = busy_pool.pooled_sub_store(Some(2));
        let h2 = q.admit(rows(400)).unwrap();
        assert_eq!(h2.is_spilled(), solo_spilled);
        let snap = q.snapshot();
        assert_eq!(snap.peak_resident_bytes, solo_snap.peak_resident_bytes);
        assert_eq!(snap.spilled_segments, solo_snap.spilled_segments);
    }

    #[test]
    fn pooled_sub_store_hold_reaches_parent_high_water() {
        let pool = SegmentStore::new(Some(4), SpillMedium::Simulated);
        let q = pool.pooled_sub_store(Some(2));
        {
            let _g = q.hold(3 * BLOCK_SIZE, 90);
            assert_eq!(pool.snapshot().resident_bytes, 3 * BLOCK_SIZE);
        }
        assert_eq!(pool.snapshot().resident_bytes, 0);
        assert_eq!(pool.snapshot().peak_resident_bytes, 3 * BLOCK_SIZE);
    }

    #[test]
    fn peak_accounts_concurrent_segments() {
        let store = SegmentStore::new(Some(64), SpillMedium::Simulated);
        let a = store.admit(rows(50)).unwrap();
        let b = store.admit(rows(50)).unwrap();
        let peak = store.snapshot().peak_resident_rows;
        assert_eq!(peak, 100);
        drop(a);
        drop(b);
        assert_eq!(store.snapshot().resident_rows, 0);
        assert_eq!(store.snapshot().peak_resident_rows, 100);
    }
}
