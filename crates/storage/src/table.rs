//! In-memory heap tables with block accounting.
//!
//! A [`Table`] stands in for the paper's windowed table: the output of the
//! non-window part of the query, over which the window-function chain runs.
//! Tables know their size in blocks (`B(R)` in the cost models) and charge
//! scan I/O to a [`CostTracker`] when asked, so a table scan costs the same
//! as reading it from the simulated device.

use crate::block::blocks_for_bytes;
use crate::colblock::RowBatch;
use crate::cost::CostTracker;
use std::sync::{Arc, OnceLock};
use wf_common::{Error, Result, Row, Schema};

/// A schema plus rows. Rows live behind an `Arc` so a table scan can hand
/// out zero-copy shared views ([`Table::shared_rows`]) instead of cloning
/// the relation; mutation goes through copy-on-write (`Arc::make_mut`).
/// The columnar view ([`Table::shared_batch`]) is built lazily and cached;
/// any mutation invalidates it.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: Arc<Vec<Row>>,
    bytes: usize,
    batch: OnceLock<Arc<RowBatch>>,
}

impl Table {
    /// Empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Arc::new(Vec::new()),
            bytes: 0,
            batch: OnceLock::new(),
        }
    }

    /// Build from parts, validating arity.
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Result<Self> {
        let mut t = Table::new(schema);
        for r in rows {
            t.try_push(r)?;
        }
        Ok(t)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Zero-copy shared view of the rows (what a streaming table scan hands
    /// to the operator chain).
    pub fn shared_rows(&self) -> Arc<Vec<Row>> {
        Arc::clone(&self.rows)
    }

    /// Zero-copy shared columnar view of the rows, built on first use and
    /// cached (table rows have uniform arity, so columnarization never
    /// fails). This is what a columnar table scan hands downstream.
    pub fn shared_batch(&self) -> Arc<RowBatch> {
        Arc::clone(self.batch.get_or_init(|| {
            Arc::new(RowBatch::from_rows(&self.rows).expect("uniform table arity"))
        }))
    }

    /// Mutable row access (used by in-place sorters in tests;
    /// copy-on-write when the rows are shared).
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        self.batch.take();
        Arc::make_mut(&mut self.rows)
    }

    /// Consume into rows.
    pub fn into_rows(self) -> Vec<Row> {
        Arc::try_unwrap(self.rows).unwrap_or_else(|a| a.as_ref().clone())
    }

    /// Number of tuples — `T(R)`.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total encoded bytes.
    pub fn byte_size(&self) -> usize {
        self.bytes
    }

    /// Size in blocks — `B(R)`.
    pub fn block_count(&self) -> u64 {
        blocks_for_bytes(self.bytes)
    }

    /// Append a row without arity checking (hot path; debug-asserted).
    pub fn push(&mut self, row: Row) {
        debug_assert_eq!(row.arity(), self.schema.len(), "row arity mismatch");
        self.bytes += row.encoded_len();
        self.batch.take();
        Arc::make_mut(&mut self.rows).push(row);
    }

    /// Append a row, checking arity.
    pub fn try_push(&mut self, row: Row) -> Result<()> {
        if row.arity() != self.schema.len() {
            return Err(Error::SchemaMismatch(format!(
                "row arity {} does not match schema arity {}",
                row.arity(),
                self.schema.len()
            )));
        }
        self.push(row);
        Ok(())
    }

    /// Charge one sequential scan of this table to the tracker.
    pub fn charge_scan(&self, tracker: &CostTracker) {
        tracker.read_blocks(self.block_count());
        tracker.move_rows(self.row_count() as u64);
    }

    /// Average encoded row width in bytes (0 for empty tables).
    pub fn avg_row_bytes(&self) -> usize {
        if self.rows.is_empty() {
            0
        } else {
            self.bytes / self.rows.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BLOCK_SIZE;
    use wf_common::{row, DataType};

    fn schema2() -> Schema {
        Schema::of(&[("a", DataType::Int), ("b", DataType::Str)])
    }

    #[test]
    fn push_tracks_bytes_and_blocks() {
        let mut t = Table::new(schema2());
        assert_eq!(t.block_count(), 0);
        let r = row![1, "hello"];
        let len = r.encoded_len();
        t.push(r);
        assert_eq!(t.byte_size(), len);
        assert_eq!(t.block_count(), 1);
        assert_eq!(t.avg_row_bytes(), len);
    }

    #[test]
    fn try_push_rejects_wrong_arity() {
        let mut t = Table::new(schema2());
        assert!(t.try_push(row![1]).is_err());
        assert!(t.try_push(row![1, "x"]).is_ok());
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn from_rows_validates() {
        assert!(Table::from_rows(schema2(), vec![row![1, "x"], row![2]]).is_err());
        let t = Table::from_rows(schema2(), vec![row![1, "x"], row![2, "y"]]).unwrap();
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn charge_scan_reads_block_count() {
        let mut t = Table::new(schema2());
        // Enough rows to exceed one block.
        let per_row = row![1, "some string"].encoded_len();
        let n = BLOCK_SIZE / per_row + 10;
        for i in 0..n {
            t.push(row![i as i64, "some string"]);
        }
        assert!(t.block_count() >= 2);
        let tracker = CostTracker::new();
        t.charge_scan(&tracker);
        let s = tracker.snapshot();
        assert_eq!(s.blocks_read, t.block_count());
        assert_eq!(s.rows_moved, t.row_count() as u64);
    }

    #[test]
    fn empty_table_avg_is_zero() {
        assert_eq!(Table::new(schema2()).avg_row_bytes(), 0);
    }

    #[test]
    fn shared_batch_caches_and_invalidates_on_mutation() {
        let mut t = Table::from_rows(schema2(), vec![row![1, "x"], row![2, "y"]]).unwrap();
        let b1 = t.shared_batch();
        assert_eq!(b1.to_rows(), t.rows());
        // Cached: same allocation on repeat.
        assert!(Arc::ptr_eq(&b1, &t.shared_batch()));
        t.push(row![3, "z"]);
        let b2 = t.shared_batch();
        assert!(!Arc::ptr_eq(&b1, &b2));
        assert_eq!(b2.to_rows(), t.rows());
        t.rows_mut()[0] = row![9, "w"];
        assert_eq!(t.shared_batch().row(0), row![9, "w"]);
    }
}
