//! Pluggable spill backends — the storage-adapter layer under
//! [`crate::spill`].
//!
//! A [`SpillFile`](crate::spill::SpillFile) produces *logical* blocks:
//! [`BLOCK_SIZE`]-byte slices of the row/key
//! stream, charged to the modeled or pool meters exactly as the paper's
//! cost model prices them. This module owns everything **below** that
//! charging layer: where the block bytes physically live, what they cost in
//! wall time, and whether they are compressed at rest.
//!
//! ```text
//!   SpillFile / SpillReader          logical blocks, meter charging
//!        │          ▲
//!        │ write    │ read (direct or via the read-ahead Prefetcher)
//!        ▼          │
//!   Box<dyn BackendFile>             one spill object, block-granular
//!        ▲
//!        │ open()
//!   Arc<dyn SpillBackend>            LocalFileBackend | MemBackend
//!                                    | ObjectStoreBackend
//! ```
//!
//! The invariant that makes the layering safe: a backend only ever sees
//! opaque block payloads. Rows, modeled counters, and pool counters are
//! decided entirely above this line, so **every backend is bit-identical in
//! all three** — only wall time (and the informational [`BackendStats`])
//! may differ. `tests/storage_backend_tests.rs` gates this across the full
//! backend × compression × prefetch matrix.
//!
//! Compression is negotiated per backend: a [`SpillConfig`] may request it,
//! but it only takes effect when the backend's [`BackendCaps::compressible`]
//! says the medium benefits (RAM-to-RAM copies do not).

use crate::block::BLOCK_SIZE;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use wf_common::{Error, Result};

/// Shared request/byte counters of one backend instance. Every file opened
/// from the backend feeds the same counters, so [`BackendStats`] aggregates
/// the whole store's spill traffic (informational — never part of modeled
/// time or pool counters).
#[derive(Debug, Default)]
pub struct BackendCounters {
    put_requests: AtomicU64,
    get_requests: AtomicU64,
    delete_requests: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    prefetch_hits: AtomicU64,
    prefetch_misses: AtomicU64,
}

impl BackendCounters {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    #[inline]
    pub(crate) fn record_put(&self, bytes: usize) {
        self.put_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_get(&self, bytes: usize) {
        self.get_requests.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_delete(&self) {
        self.delete_requests.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_prefetch(&self, hit: bool) {
        if hit {
            self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.prefetch_misses.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A point-in-time read of a backend's [`BackendCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendStats {
    /// Backend name (`"mem"` / `"file"` / `"objectstore"`).
    pub backend: &'static str,
    /// Block-append requests issued.
    pub put_requests: u64,
    /// Block-read requests issued (prefetched reads included).
    pub get_requests: u64,
    /// Spill objects deleted (every file is, eventually — delete-on-drop).
    pub delete_requests: u64,
    /// Physical bytes written (post-compression).
    pub bytes_written: u64,
    /// Physical bytes read (pre-decompression).
    pub bytes_read: u64,
    /// Reads served from the read-ahead buffer without blocking.
    pub prefetch_hits: u64,
    /// Reads that had to wait for (or issue) the fetch.
    pub prefetch_misses: u64,
}

impl BackendStats {
    /// Fraction of reads served from the read-ahead buffer (0 when no
    /// prefetched read happened).
    pub fn prefetch_hit_rate(&self) -> f64 {
        let total = self.prefetch_hits + self.prefetch_misses;
        if total == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / total as f64
        }
    }
}

/// Capability flags a backend advertises; [`SpillConfig`] negotiates
/// compression against them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendCaps {
    /// Blocks survive in external storage (OS files / object store) rather
    /// than the process heap.
    pub persistent: bool,
    /// Requests cross a (simulated) network: latency-bound, so read-ahead
    /// pays off most here.
    pub remote: bool,
    /// Compressing blocks saves real transfer/storage cost on this medium.
    /// RAM-backed media decline: the CPU spent would buy nothing.
    pub compressible: bool,
}

/// Block-granular storage adapter — where spill blocks physically live.
///
/// Implementations must be cheap to share ([`Arc`]) and thread-safe:
/// [`SpillBackend::open`] is called once per spill file, from any worker
/// thread.
pub trait SpillBackend: Send + Sync {
    /// Short stable name (`"mem"` / `"file"` / `"objectstore"`).
    fn name(&self) -> &'static str;
    /// What this medium is good at (drives compression negotiation).
    fn caps(&self) -> BackendCaps;
    /// Create a fresh, empty spill object.
    fn open(&self) -> Result<Box<dyn BackendFile>>;
    /// The backend's shared traffic counters.
    fn counters(&self) -> &Arc<BackendCounters>;

    /// Snapshot the traffic counters.
    fn stats(&self) -> BackendStats {
        let c = self.counters();
        BackendStats {
            backend: self.name(),
            put_requests: c.put_requests.load(Ordering::Relaxed),
            get_requests: c.get_requests.load(Ordering::Relaxed),
            delete_requests: c.delete_requests.load(Ordering::Relaxed),
            bytes_written: c.bytes_written.load(Ordering::Relaxed),
            bytes_read: c.bytes_read.load(Ordering::Relaxed),
            prefetch_hits: c.prefetch_hits.load(Ordering::Relaxed),
            prefetch_misses: c.prefetch_misses.load(Ordering::Relaxed),
        }
    }
}

/// One spill object: an append-only sequence of opaque block payloads.
///
/// Writes go through `&mut self` (single producer — the `SpillFile`);
/// reads take `&self` so the prefetcher's worker threads can fetch
/// concurrently. Every implementation deletes its storage on drop — the
/// handle *is* the object's lifetime, which is what keeps aborted queries
/// (cancel/timeout dropping a reader mid-stream) from leaking spill space.
pub trait BackendFile: Send + Sync {
    /// Append one block payload.
    fn append_block(&mut self, block: &[u8]) -> Result<()>;
    /// Read back the payload of block `idx` (0-based append order).
    fn read_block(&self, idx: u64) -> Result<Vec<u8>>;
    /// Blocks appended so far.
    fn block_count(&self) -> u64;
    /// Release the underlying storage. Idempotent; also invoked by drop.
    fn delete(&self);
    /// The owning backend's shared traffic counters (prefetch hit/miss
    /// accounting reports here).
    fn counters(&self) -> &Arc<BackendCounters>;
}

// ---------------------------------------------------------------------------
// MemBackend
// ---------------------------------------------------------------------------

/// In-memory backend (the default): blocks live on the process heap. This
/// absorbs the old `SimStore` — counts are what matter, wall I/O is free.
#[derive(Debug, Default)]
pub struct MemBackend {
    counters: Arc<BackendCounters>,
}

impl MemBackend {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }
}

impl SpillBackend for MemBackend {
    fn name(&self) -> &'static str {
        "mem"
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            persistent: false,
            remote: false,
            compressible: false,
        }
    }

    fn open(&self) -> Result<Box<dyn BackendFile>> {
        Ok(Box::new(MemFile {
            blocks: Mutex::new(Some(Vec::new())),
            counters: Arc::clone(&self.counters),
        }))
    }

    fn counters(&self) -> &Arc<BackendCounters> {
        &self.counters
    }
}

struct MemFile {
    /// `None` after delete.
    blocks: Mutex<Option<Vec<Vec<u8>>>>,
    counters: Arc<BackendCounters>,
}

impl BackendFile for MemFile {
    fn append_block(&mut self, block: &[u8]) -> Result<()> {
        let mut guard = self.blocks.lock().expect("mem spill lock");
        let blocks = guard
            .as_mut()
            .ok_or_else(|| Error::Execution("append to deleted spill object".into()))?;
        blocks.push(block.to_vec());
        self.counters.record_put(block.len());
        Ok(())
    }

    fn read_block(&self, idx: u64) -> Result<Vec<u8>> {
        let guard = self.blocks.lock().expect("mem spill lock");
        let blocks = guard
            .as_ref()
            .ok_or_else(|| Error::Execution("read from deleted spill object".into()))?;
        let block = blocks
            .get(idx as usize)
            .ok_or_else(|| Error::Execution(format!("spill block {idx} out of range")))?
            .clone();
        self.counters.record_get(block.len());
        Ok(block)
    }

    fn block_count(&self) -> u64 {
        self.blocks
            .lock()
            .expect("mem spill lock")
            .as_ref()
            .map_or(0, |b| b.len() as u64)
    }

    fn delete(&self) {
        if self.blocks.lock().expect("mem spill lock").take().is_some() {
            self.counters.record_delete();
        }
    }

    fn counters(&self) -> &Arc<BackendCounters> {
        &self.counters
    }
}

impl Drop for MemFile {
    fn drop(&mut self) {
        self.delete();
    }
}

// ---------------------------------------------------------------------------
// LocalFileBackend
// ---------------------------------------------------------------------------

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Real temporary files (one per spill object), removed on drop.
#[derive(Debug)]
pub struct LocalFileBackend {
    dir: PathBuf,
    counters: Arc<BackendCounters>,
}

impl LocalFileBackend {
    /// Spill into the OS temp dir.
    pub fn new() -> Arc<Self> {
        Self::in_dir(std::env::temp_dir())
    }

    /// Spill into a caller-chosen directory (tests point this at a private
    /// dir to observe delete-on-drop).
    pub fn in_dir(dir: PathBuf) -> Arc<Self> {
        Arc::new(LocalFileBackend {
            dir,
            counters: Arc::new(BackendCounters::default()),
        })
    }
}

impl SpillBackend for LocalFileBackend {
    fn name(&self) -> &'static str {
        "file"
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            persistent: true,
            remote: false,
            compressible: true,
        }
    }

    fn open(&self) -> Result<Box<dyn BackendFile>> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = self
            .dir
            .join(format!("wfopt-spill-{}-{}.tmp", std::process::id(), n));
        let file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| Error::Execution(format!("create spill file: {e}")))?;
        Ok(Box::new(LocalFile {
            inner: Mutex::new(LocalFileInner {
                file,
                index: Vec::new(),
                len: 0,
            }),
            path,
            deleted: AtomicBool::new(false),
            counters: Arc::clone(&self.counters),
        }))
    }

    fn counters(&self) -> &Arc<BackendCounters> {
        &self.counters
    }
}

struct LocalFileInner {
    file: File,
    /// `(offset, len)` of each appended block — payloads are variable-sized
    /// once compression is on.
    index: Vec<(u64, u32)>,
    len: u64,
}

struct LocalFile {
    inner: Mutex<LocalFileInner>,
    path: PathBuf,
    deleted: AtomicBool,
    counters: Arc<BackendCounters>,
}

impl BackendFile for LocalFile {
    fn append_block(&mut self, block: &[u8]) -> Result<()> {
        let inner = self.inner.get_mut().expect("file spill lock");
        inner
            .file
            .seek(SeekFrom::End(0))
            .and_then(|_| inner.file.write_all(block))
            .map_err(|e| Error::Execution(format!("spill write: {e}")))?;
        inner.index.push((inner.len, block.len() as u32));
        inner.len += block.len() as u64;
        self.counters.record_put(block.len());
        Ok(())
    }

    fn read_block(&self, idx: u64) -> Result<Vec<u8>> {
        let mut inner = self.inner.lock().expect("file spill lock");
        let &(offset, len) = inner
            .index
            .get(idx as usize)
            .ok_or_else(|| Error::Execution(format!("spill block {idx} out of range")))?;
        let mut buf = vec![0u8; len as usize];
        inner
            .file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| Error::Execution(format!("spill seek: {e}")))?;
        let mut total = 0;
        while total < buf.len() {
            let n = inner
                .file
                .read(&mut buf[total..])
                .map_err(|e| Error::Execution(format!("spill read: {e}")))?;
            if n == 0 {
                return Err(Error::Execution("short read from spill file".into()));
            }
            total += n;
        }
        self.counters.record_get(buf.len());
        Ok(buf)
    }

    fn block_count(&self) -> u64 {
        self.inner.lock().expect("file spill lock").index.len() as u64
    }

    fn delete(&self) {
        if !self.deleted.swap(true, Ordering::SeqCst) {
            let _ = std::fs::remove_file(&self.path);
            self.counters.record_delete();
        }
    }

    fn counters(&self) -> &Arc<BackendCounters> {
        &self.counters
    }
}

impl Drop for LocalFile {
    fn drop(&mut self) {
        self.delete();
    }
}

// ---------------------------------------------------------------------------
// ObjectStoreBackend
// ---------------------------------------------------------------------------

/// Wall-time knobs of the simulated object store. All-zero (the default)
/// models an infinitely fast store — request counting still works, which is
/// what the suite-wide `WF_SPILL_BACKEND=objectstore` CI axis uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObjectStoreConfig {
    /// Round-trip cost charged to every request (PUT and GET).
    pub request_latency: Duration,
    /// Extra time-to-first-byte charged to every GET.
    pub first_byte_delay: Duration,
    /// Transfer rate in bytes/second (`0` = unlimited).
    pub throughput_bytes_per_sec: u64,
}

impl ObjectStoreConfig {
    fn transfer_time(&self, bytes: usize) -> Duration {
        if self.throughput_bytes_per_sec == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(bytes as f64 / self.throughput_bytes_per_sec as f64)
        }
    }
}

/// Simulated remote object store: blocks live on the heap like
/// [`MemBackend`], but every request sleeps for its modeled network cost
/// (sleeping, not spinning — so concurrent prefetch fetches genuinely
/// overlap, even on a single-core host).
#[derive(Debug)]
pub struct ObjectStoreBackend {
    cfg: ObjectStoreConfig,
    counters: Arc<BackendCounters>,
}

impl ObjectStoreBackend {
    pub fn new(cfg: ObjectStoreConfig) -> Arc<Self> {
        Arc::new(ObjectStoreBackend {
            cfg,
            counters: Arc::new(BackendCounters::default()),
        })
    }

    /// The latency/throughput knobs this store was built with.
    pub fn config(&self) -> ObjectStoreConfig {
        self.cfg
    }
}

impl SpillBackend for ObjectStoreBackend {
    fn name(&self) -> &'static str {
        "objectstore"
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            persistent: true,
            remote: true,
            compressible: true,
        }
    }

    fn open(&self) -> Result<Box<dyn BackendFile>> {
        Ok(Box::new(ObjectFile {
            blocks: Mutex::new(Some(Vec::new())),
            cfg: self.cfg,
            counters: Arc::clone(&self.counters),
        }))
    }

    fn counters(&self) -> &Arc<BackendCounters> {
        &self.counters
    }
}

struct ObjectFile {
    blocks: Mutex<Option<Vec<Vec<u8>>>>,
    cfg: ObjectStoreConfig,
    counters: Arc<BackendCounters>,
}

impl BackendFile for ObjectFile {
    fn append_block(&mut self, block: &[u8]) -> Result<()> {
        let cost = self.cfg.request_latency + self.cfg.transfer_time(block.len());
        if !cost.is_zero() {
            std::thread::sleep(cost);
        }
        let mut guard = self.blocks.lock().expect("object spill lock");
        let blocks = guard
            .as_mut()
            .ok_or_else(|| Error::Execution("PUT to deleted spill object".into()))?;
        blocks.push(block.to_vec());
        self.counters.record_put(block.len());
        Ok(())
    }

    fn read_block(&self, idx: u64) -> Result<Vec<u8>> {
        // Snapshot the payload first, then sleep outside the lock so
        // concurrent GETs (the prefetcher's whole point) overlap their
        // simulated network time.
        let block = {
            let guard = self.blocks.lock().expect("object spill lock");
            let blocks = guard
                .as_ref()
                .ok_or_else(|| Error::Execution("GET from deleted spill object".into()))?;
            blocks
                .get(idx as usize)
                .ok_or_else(|| Error::Execution(format!("spill block {idx} out of range")))?
                .clone()
        };
        let cost = self.cfg.request_latency
            + self.cfg.first_byte_delay
            + self.cfg.transfer_time(block.len());
        if !cost.is_zero() {
            std::thread::sleep(cost);
        }
        self.counters.record_get(block.len());
        Ok(block)
    }

    fn block_count(&self) -> u64 {
        self.blocks
            .lock()
            .expect("object spill lock")
            .as_ref()
            .map_or(0, |b| b.len() as u64)
    }

    fn delete(&self) {
        if self
            .blocks
            .lock()
            .expect("object spill lock")
            .take()
            .is_some()
        {
            self.counters.record_delete();
        }
    }

    fn counters(&self) -> &Arc<BackendCounters> {
        &self.counters
    }
}

impl Drop for ObjectFile {
    fn drop(&mut self) {
        self.delete();
    }
}

// ---------------------------------------------------------------------------
// Selection & configuration
// ---------------------------------------------------------------------------

/// Serializable backend selector — what [`DatabaseConfig`] and CLI flags
/// carry around ([`SpillConfig`] holds the live `Arc<dyn SpillBackend>`).
///
/// [`DatabaseConfig`]: https://docs.rs/wfopt
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillBackendKind {
    /// In-memory ([`MemBackend`], the default).
    #[default]
    Mem,
    /// Local temp files ([`LocalFileBackend`]).
    File,
    /// Simulated object store ([`ObjectStoreBackend`]) with the given
    /// latency knobs.
    ObjectStore(ObjectStoreConfig),
}

impl SpillBackendKind {
    /// Parse the `WF_SPILL_BACKEND` environment variable
    /// (`mem`/`file`/`objectstore`; unset or unknown → `Mem`). The
    /// env-selected object store has zero latency — the CI matrix axis runs
    /// the whole suite over it, so it must only exercise the code path, not
    /// slow the suite down.
    pub fn from_env() -> Self {
        match std::env::var("WF_SPILL_BACKEND").as_deref() {
            Ok("file") => SpillBackendKind::File,
            Ok("objectstore") => SpillBackendKind::ObjectStore(ObjectStoreConfig::default()),
            _ => SpillBackendKind::Mem,
        }
    }

    /// Instantiate a fresh backend (its own counters).
    pub fn build(self) -> Arc<dyn SpillBackend> {
        match self {
            SpillBackendKind::Mem => MemBackend::new(),
            SpillBackendKind::File => LocalFileBackend::new(),
            SpillBackendKind::ObjectStore(cfg) => ObjectStoreBackend::new(cfg),
        }
    }
}

/// Everything the spill path needs to know: which backend, whether to
/// compress blocks at rest, and how deep to read ahead. Cloning shares the
/// backend (and its counters) — one config per chain/store aggregates all
/// of its spill traffic.
#[derive(Clone)]
pub struct SpillConfig {
    /// Where blocks live.
    pub backend: Arc<dyn SpillBackend>,
    /// Request block compression (applied only where the backend's
    /// [`BackendCaps::compressible`] agrees).
    pub compress: bool,
    /// Read-ahead depth in blocks (`0` = synchronous cold reads).
    pub prefetch_blocks: usize,
}

impl SpillConfig {
    /// In-memory backend, no compression, no read-ahead — the default.
    pub fn mem() -> Self {
        Self::of_kind(SpillBackendKind::Mem)
    }

    /// Local temp-file backend.
    pub fn file() -> Self {
        Self::of_kind(SpillBackendKind::File)
    }

    /// Simulated object store with the given knobs.
    pub fn object_store(cfg: ObjectStoreConfig) -> Self {
        Self::of_kind(SpillBackendKind::ObjectStore(cfg))
    }

    /// A fresh backend of the given kind, compression and prefetch off.
    pub fn of_kind(kind: SpillBackendKind) -> Self {
        SpillConfig {
            backend: kind.build(),
            compress: false,
            prefetch_blocks: 0,
        }
    }

    /// Backend from `WF_SPILL_BACKEND`, compression from
    /// `WF_SPILL_COMPRESS` (`1`/`true`), read-ahead depth from
    /// `WF_PREFETCH_BLOCKS` — the defaults every environment not given an
    /// explicit config starts from.
    pub fn from_env() -> Self {
        let compress = matches!(
            std::env::var("WF_SPILL_COMPRESS").as_deref(),
            Ok("1") | Ok("true")
        );
        let prefetch = std::env::var("WF_PREFETCH_BLOCKS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        Self::of_kind(SpillBackendKind::from_env())
            .with_compress(compress)
            .with_prefetch(prefetch)
    }

    /// Same config with compression requested/cleared.
    pub fn with_compress(mut self, compress: bool) -> Self {
        self.compress = compress;
        self
    }

    /// Same config with the read-ahead depth set.
    pub fn with_prefetch(mut self, prefetch_blocks: usize) -> Self {
        self.prefetch_blocks = prefetch_blocks;
        self
    }

    /// Whether blocks will actually be compressed: requested **and** the
    /// backend's medium benefits (the negotiation).
    pub fn effective_compress(&self) -> bool {
        self.compress && self.backend.caps().compressible
    }

    /// Traffic snapshot of the shared backend.
    pub fn stats(&self) -> BackendStats {
        self.backend.stats()
    }
}

impl std::fmt::Debug for SpillConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillConfig")
            .field("backend", &self.backend.name())
            .field("compress", &self.compress)
            .field("prefetch_blocks", &self.prefetch_blocks)
            .finish()
    }
}

/// The logical block size backends receive (uncompressed payloads are
/// exactly this long except for a file's trailing partial block).
pub const LOGICAL_BLOCK: usize = BLOCK_SIZE;

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(backend: &dyn SpillBackend) {
        let mut f = backend.open().unwrap();
        let blocks: Vec<Vec<u8>> = (0..5u8)
            .map(|i| vec![i; if i == 4 { 100 } else { BLOCK_SIZE }])
            .collect();
        for b in &blocks {
            f.append_block(b).unwrap();
        }
        assert_eq!(f.block_count(), 5);
        // Out-of-order reads are allowed (merge cascades interleave runs).
        for idx in [3u64, 0, 4, 2, 1] {
            assert_eq!(f.read_block(idx).unwrap(), blocks[idx as usize]);
        }
        assert!(f.read_block(5).is_err());
        let s = backend.stats();
        assert_eq!(s.put_requests, 5);
        assert_eq!(s.get_requests, 5);
        drop(f);
        assert_eq!(backend.stats().delete_requests, 1);
    }

    #[test]
    fn mem_backend_round_trips() {
        round_trip(&*MemBackend::new());
    }

    #[test]
    fn file_backend_round_trips() {
        round_trip(&*LocalFileBackend::new());
    }

    #[test]
    fn object_store_round_trips_and_counts() {
        let backend = ObjectStoreBackend::new(ObjectStoreConfig::default());
        round_trip(&*backend);
        let s = backend.stats();
        assert_eq!(s.backend, "objectstore");
        assert!(s.bytes_written >= 4 * BLOCK_SIZE as u64);
        assert_eq!(s.bytes_read, s.bytes_written);
    }

    #[test]
    fn local_file_is_removed_on_drop_and_delete_is_idempotent() {
        let backend = LocalFileBackend::new();
        let mut f = backend.open().unwrap();
        f.append_block(&[1, 2, 3]).unwrap();
        let path = backend.dir.read_dir().unwrap().count();
        assert!(path > 0);
        f.delete();
        f.delete();
        drop(f);
        assert_eq!(backend.stats().delete_requests, 1);
    }

    #[test]
    fn object_store_sleeps_for_latency() {
        let backend = ObjectStoreBackend::new(ObjectStoreConfig {
            request_latency: Duration::from_millis(2),
            first_byte_delay: Duration::from_millis(3),
            throughput_bytes_per_sec: 0,
        });
        let mut f = backend.open().unwrap();
        let t = std::time::Instant::now();
        f.append_block(&[0u8; 64]).unwrap();
        f.read_block(0).unwrap();
        // One PUT (2 ms) + one GET (2 + 3 ms).
        assert!(t.elapsed() >= Duration::from_millis(7));
    }

    #[test]
    fn compression_negotiation_follows_caps() {
        let mem = SpillConfig::mem().with_compress(true);
        assert!(!mem.effective_compress(), "RAM declines compression");
        let file = SpillConfig::file().with_compress(true);
        assert!(file.effective_compress());
        let os = SpillConfig::object_store(ObjectStoreConfig::default()).with_compress(true);
        assert!(os.effective_compress());
        assert!(!SpillConfig::file().effective_compress(), "off by default");
    }

    #[test]
    fn kind_selects_backends() {
        assert_eq!(SpillBackendKind::Mem.build().name(), "mem");
        assert_eq!(SpillBackendKind::File.build().name(), "file");
        assert_eq!(
            SpillBackendKind::ObjectStore(ObjectStoreConfig::default())
                .build()
                .name(),
            "objectstore"
        );
    }
}
