//! The synthetic `web_sales` table.
//!
//! The paper uses TPC-DS SF-100 `web_sales`: 72 M tuples, 14.3 GB, 214 B
//! average width, uniform attributes. This generator reproduces the *shape*
//! at laptop scale: configurable row count, per-column distinct counts
//! chosen so each experiment stays in the paper's regime (see DESIGN.md
//! §5's scaling notes), and a padding column for realistic row width.

use crate::rng::SplitMix64;
use wf_common::{AttrId, DataType, Row, Schema, Value};
use wf_storage::Table;

/// Columns of the generated table, in schema order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WsColumn {
    SoldDate,
    SoldTime,
    ShipDate,
    Item,
    Bill,
    Warehouse,
    Quantity,
    OrderNumber,
    Padding,
}

impl WsColumn {
    /// Attribute id (schema position).
    pub fn attr(self) -> AttrId {
        AttrId::new(self as usize)
    }

    /// Column name (paper Table 2 abbreviations in comments).
    pub fn name(self) -> &'static str {
        match self {
            WsColumn::SoldDate => "ws_sold_date_sk", // date
            WsColumn::SoldTime => "ws_sold_time_sk", // time
            WsColumn::ShipDate => "ws_ship_date_sk", // ship
            WsColumn::Item => "ws_item_sk",          // item
            WsColumn::Bill => "ws_bill_customer_sk", // bill
            WsColumn::Warehouse => "ws_warehouse_sk",
            WsColumn::Quantity => "ws_quantity",
            WsColumn::OrderNumber => "ws_order_number",
            WsColumn::Padding => "ws_padding",
        }
    }
}

/// Generator configuration. Defaults follow DESIGN.md's scaling of the
/// paper's SF-100 table.
#[derive(Debug, Clone)]
pub struct WsConfig {
    pub rows: usize,
    pub d_date: u64,
    pub d_time: u64,
    pub d_ship: u64,
    /// "Medium" partition count for Q1 (paper: 204 000 of 72 M).
    pub d_item: u64,
    /// Together with `d_item`, makes (item, bill) ≈ unique for Q2.
    pub d_bill: u64,
    /// "Extremely small" partition count for Q3 (paper: 16).
    pub d_warehouse: u64,
    /// TPC-DS domain 1..=100, used by Q4/Q5.
    pub d_quantity: u64,
    /// Bytes of string padding per row (≈ 214-byte paper rows).
    pub padding: usize,
    pub seed: u64,
}

impl Default for WsConfig {
    fn default() -> Self {
        WsConfig {
            rows: 400_000,
            d_date: 1_800,
            d_time: 43_200,
            d_ship: 1_800,
            d_item: 20_000,
            d_bill: 40_000,
            d_warehouse: 16,
            d_quantity: 100,
            padding: 135,
            seed: 42,
        }
    }
}

impl WsConfig {
    /// A small configuration for tests.
    pub fn small(rows: usize) -> Self {
        WsConfig {
            rows,
            d_item: (rows as u64 / 20).max(4),
            d_bill: (rows as u64 / 10).max(4),
            ..WsConfig::default()
        }
    }

    /// The table schema.
    pub fn schema(&self) -> Schema {
        Schema::of(&[
            (WsColumn::SoldDate.name(), DataType::Int),
            (WsColumn::SoldTime.name(), DataType::Int),
            (WsColumn::ShipDate.name(), DataType::Int),
            (WsColumn::Item.name(), DataType::Int),
            (WsColumn::Bill.name(), DataType::Int),
            (WsColumn::Warehouse.name(), DataType::Int),
            (WsColumn::Quantity.name(), DataType::Int),
            (WsColumn::OrderNumber.name(), DataType::Int),
            (WsColumn::Padding.name(), DataType::Str),
        ])
    }

    /// Generate the base (unordered) table.
    pub fn generate(&self) -> Table {
        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let mut table = Table::new(self.schema());
        let pad: std::sync::Arc<str> = "x".repeat(self.padding).into();
        for order in 0..self.rows {
            let row = Row::new(vec![
                Value::Int(rng.random_below(self.d_date) as i64),
                Value::Int(rng.random_below(self.d_time) as i64),
                Value::Int(rng.random_below(self.d_ship) as i64),
                Value::Int(rng.random_below(self.d_item) as i64),
                Value::Int(rng.random_below(self.d_bill) as i64),
                Value::Int(rng.random_below(self.d_warehouse) as i64),
                Value::Int(1 + rng.random_below(self.d_quantity) as i64),
                Value::Int(order as i64),
                Value::Str(pad.clone()),
            ]);
            table.push(row);
        }
        table
    }

    /// `web_sales_s`: the base table totally sorted on a column
    /// (§6.1 part 2 sorts on `ws_quantity`).
    pub fn generate_sorted_on(&self, col: WsColumn) -> Table {
        let base = self.generate();
        let schema = base.schema().clone();
        let mut rows = base.into_rows();
        let attr = col.attr();
        rows.sort_by(|a, b| a.get(attr).cmp(b.get(attr)));
        Table::from_rows(schema, rows).expect("sorted variant keeps schema")
    }

    /// `web_sales_g`: grouped (each value's rows contiguous) but neither
    /// the groups nor the rows within a group are sorted.
    pub fn generate_grouped_on(&self, col: WsColumn) -> Table {
        let base = self.generate();
        let schema = base.schema().clone();
        let attr = col.attr();
        // Bucket rows by value, then emit buckets in hash order (arbitrary
        // but deterministic, and decidedly not sorted).
        let mut buckets: std::collections::HashMap<Value, Vec<Row>> =
            std::collections::HashMap::new();
        for row in base.into_rows() {
            buckets.entry(row.get(attr).clone()).or_default().push(row);
        }
        let mut keyed: Vec<(u64, Vec<Row>)> = buckets
            .into_iter()
            .map(|(v, rows)| {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                v.hash(&mut h);
                (h.finish(), rows)
            })
            .collect();
        keyed.sort_by_key(|(h, _)| *h);
        let mut out = Table::new(schema);
        for (_, rows) in keyed {
            for r in rows {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_in_seed() {
        let cfg = WsConfig::small(500);
        let t1 = cfg.generate();
        let t2 = cfg.generate();
        assert_eq!(t1.rows(), t2.rows());
        let t3 = WsConfig {
            seed: 7,
            ..WsConfig::small(500)
        }
        .generate();
        assert_ne!(t1.rows(), t3.rows());
    }

    #[test]
    fn respects_domains_and_row_count() {
        let cfg = WsConfig::small(2_000);
        let t = cfg.generate();
        assert_eq!(t.row_count(), 2_000);
        let wh = WsColumn::Warehouse.attr();
        let q = WsColumn::Quantity.attr();
        for row in t.rows() {
            let w = row.get(wh).as_int().unwrap();
            assert!((0..16).contains(&w));
            let qty = row.get(q).as_int().unwrap();
            assert!((1..=100).contains(&qty));
        }
        // Order numbers unique.
        let orders: HashSet<i64> = t
            .rows()
            .iter()
            .map(|r| r.get(WsColumn::OrderNumber.attr()).as_int().unwrap())
            .collect();
        assert_eq!(orders.len(), 2_000);
    }

    #[test]
    fn row_width_near_paper() {
        let t = WsConfig {
            rows: 10,
            ..WsConfig::default()
        }
        .generate();
        let w = t.avg_row_bytes();
        assert!(
            (200..=228).contains(&w),
            "avg width {w} should approximate 214 B"
        );
    }

    #[test]
    fn sorted_variant_is_sorted() {
        let t = WsConfig::small(1_000).generate_sorted_on(WsColumn::Quantity);
        let q = WsColumn::Quantity.attr();
        assert!(t.rows().windows(2).all(|w| w[0].get(q) <= w[1].get(q)));
        assert_eq!(t.row_count(), 1_000);
    }

    #[test]
    fn grouped_variant_is_grouped_not_sorted() {
        let t = WsConfig::small(2_000).generate_grouped_on(WsColumn::Quantity);
        let q = WsColumn::Quantity.attr();
        // Grouped: each value appears in exactly one contiguous run.
        let mut seen: HashSet<i64> = HashSet::new();
        let mut last: Option<i64> = None;
        for row in t.rows() {
            let v = row.get(q).as_int().unwrap();
            if last != Some(v) {
                assert!(seen.insert(v), "value {v} appeared in two runs");
                last = Some(v);
            }
        }
        // Not sorted: with 100 groups in hash order, ascending order is
        // essentially impossible.
        let sorted = t.rows().windows(2).all(|w| w[0].get(q) <= w[1].get(q));
        assert!(!sorted, "grouped variant should not be fully sorted");
    }

    #[test]
    fn schema_resolves_paper_columns() {
        let s = WsConfig::default().schema();
        assert_eq!(s.resolve("ws_item_sk").unwrap(), WsColumn::Item.attr());
        assert_eq!(s.resolve("ws_quantity").unwrap(), WsColumn::Quantity.attr());
        assert_eq!(s.len(), 9);
    }
}
