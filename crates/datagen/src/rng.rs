//! A tiny deterministic PRNG (SplitMix64) standing in for the `rand` crate,
//! so the generators are reproducible and the workspace builds without
//! external dependencies.
//!
//! Statistical quality is far beyond what uniform synthetic tables need;
//! determinism in the seed is the property the benchmarks rely on.

/// SplitMix64 generator. Distinct seeds give independent streams.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    /// (Modulo bias is negligible for the small domains used here and keeps
    /// the generator branch-free and reproducible.)
    pub fn random_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "random_below requires a non-zero bound");
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, bound)` as `usize`.
    pub fn random_below_usize(&mut self, bound: usize) -> usize {
        self.random_below(bound as u64) as usize
    }

    /// Uniform draw from the inclusive range `[lo, hi]`.
    pub fn random_inclusive_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.random_below_usize(hi - lo + 1)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.random_below_usize(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        let mut c = SplitMix64::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn random_below_stays_in_range_and_covers() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "1000 draws should cover all 10 values"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::seed_from_u64(5);
        let mut v: Vec<usize> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..20).collect::<Vec<_>>(),
            "20 elements should not stay in place"
        );
    }
}
