//! The random window-function workload of §6.3 (Table 11).
//!
//! "In each window function wf of each query, we randomly determined the
//! number of attributes as well as the attributes themselves for both WPK
//! and WOK." Attributes are drawn from the five columns of Table 2.

use crate::rng::SplitMix64;
use wf_common::{AttrId, OrdElem, SortSpec};
use wf_core::spec::WindowSpec;

/// Generate `n` random window specifications over `attr_pool` (distinct
/// attributes; WPK up to 3 attributes, WOK up to 2, never both empty).
pub fn random_specs(n: usize, attr_pool: &[AttrId], seed: u64) -> Vec<WindowSpec> {
    assert!(
        attr_pool.len() >= 3,
        "need at least 3 attributes to draw from"
    );
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut specs = Vec::with_capacity(n);
    for i in 0..n {
        loop {
            let mut pool: Vec<AttrId> = attr_pool.to_vec();
            rng.shuffle(&mut pool);
            let n_wpk = rng.random_inclusive_usize(0, 3usize.min(pool.len()));
            let n_wok = rng.random_inclusive_usize(0, 2usize.min(pool.len() - n_wpk));
            if n_wpk + n_wok == 0 {
                continue;
            }
            let wpk: Vec<AttrId> = pool[..n_wpk].to_vec();
            let wok = SortSpec::new(
                pool[n_wpk..n_wpk + n_wok]
                    .iter()
                    .map(|&a| OrdElem::asc(a))
                    .collect(),
            );
            specs.push(WindowSpec::rank(format!("wf{}", i + 1), wpk, wok));
            break;
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Vec<AttrId> {
        (0..5).map(AttrId::new).collect()
    }

    #[test]
    fn deterministic_and_sized() {
        let a = random_specs(8, &pool(), 1);
        let b = random_specs(8, &pool(), 1);
        assert_eq!(a.len(), 8);
        assert_eq!(a, b);
        let c = random_specs(8, &pool(), 2);
        assert_ne!(a, c);
    }

    #[test]
    fn never_empty_keys_and_bounded() {
        for seed in 0..20 {
            for spec in random_specs(10, &pool(), seed) {
                assert!(spec.key_len() >= 1);
                assert!(spec.wpk().len() <= 3);
                assert!(spec.wok().len() <= 2);
            }
        }
    }

    #[test]
    fn wpk_wok_disjoint_by_construction() {
        for spec in random_specs(50, &pool(), 9) {
            for e in spec.wok().elems() {
                assert!(!spec.wpk().contains(e.attr));
            }
        }
    }
}
