//! # wf-datagen
//!
//! TPC-DS-shaped data generators for the benchmark harness:
//!
//! * [`web_sales`] — a synthetic `web_sales` table with the columns the
//!   paper's experiments touch (Table 2) plus a unique order number and a
//!   padding column that brings the encoded row width close to the paper's
//!   214 bytes,
//! * sorted / grouped variants (`web_sales_s`, `web_sales_g` of §6.1
//!   part 2),
//! * [`random_specs`] — the random window-function workload of §6.3
//!   (Table 11).
//!
//! All generators are deterministic in their seed.

pub mod queries;
pub mod rng;
pub mod web_sales;

pub use queries::random_specs;
pub use web_sales::{WsColumn, WsConfig};
