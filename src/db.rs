//! A small embedded-database façade: register tables, run window-function
//! SQL, get tables back. Ties the whole pipeline together — parse → bind →
//! optimize (any scheme) → execute → final ORDER BY → projection.

use wf_common::{Error, Result, Schema, SortSpec};
use wf_core::cost::TableStats;
use wf_core::integrated::apply_final_order;
use wf_core::plan::Plan;
use wf_core::planner::{optimize, Scheme};
use wf_core::runtime::{execute_plan, project, ExecEnv, ExecReport};
use wf_sql::{parse_window_query, Catalog};
use wf_storage::Table;

/// An in-memory database of named tables with a window-query SQL interface.
///
/// ```
/// use wfopt::prelude::*;
/// use wfopt::Database;
///
/// let mut db = Database::new();
/// let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
/// let mut t = Table::new(schema);
/// for (g, v) in [(1, 10), (1, 30), (2, 20)] {
///     t.push(Row::new(vec![g.into(), v.into()]));
/// }
/// db.register("t", t).unwrap();
///
/// let out = db
///     .query("SELECT *, rank() OVER (PARTITION BY g ORDER BY v DESC) AS r FROM t")
///     .unwrap();
/// assert_eq!(out.schema().len(), 3);
/// assert_eq!(out.row_count(), 3);
/// ```
pub struct Database {
    catalog: Catalog,
    tables: std::collections::HashMap<String, Table>,
    stats: std::collections::HashMap<String, TableStats>,
    scheme: Scheme,
    mem_blocks: u64,
}

impl Default for Database {
    fn default() -> Self {
        Database {
            catalog: Catalog::new(),
            tables: std::collections::HashMap::new(),
            stats: std::collections::HashMap::new(),
            scheme: Scheme::Cso,
            mem_blocks: 256,
        }
    }
}

impl Database {
    /// Empty database (CSO planning, 256 blocks of sort memory).
    pub fn new() -> Self {
        Database::default()
    }

    /// Change the optimization scheme (e.g. to compare against PSQL).
    pub fn with_scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Change the unit reorder memory (the paper's `M`, in blocks).
    pub fn with_memory_blocks(mut self, blocks: u64) -> Self {
        self.mem_blocks = blocks;
        self
    }

    /// Register a table; statistics are computed eagerly.
    pub fn register(&mut self, name: &str, table: Table) -> Result<()> {
        self.catalog.register(name, table.schema().clone());
        self.stats
            .insert(name.to_ascii_lowercase(), TableStats::from_table(&table));
        self.tables.insert(name.to_ascii_lowercase(), table);
        Ok(())
    }

    /// Look up a registered table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| Error::InvalidQuery(format!("unknown table `{name}`")))
    }

    /// Table schema by name.
    pub fn schema(&self, name: &str) -> Result<&Schema> {
        self.table(name).map(Table::schema)
    }

    /// Run a window query end to end; returns the result table.
    pub fn query(&self, sql: &str) -> Result<Table> {
        self.query_detailed(sql).map(|(t, _, _)| t)
    }

    /// Run a window query, returning the result, the plan and the
    /// execution report (for EXPLAIN ANALYZE-style inspection).
    pub fn query_detailed(&self, sql: &str) -> Result<(Table, Plan, ExecReport)> {
        let (table_name, query) = parse_window_query(sql, &self.catalog)?;
        let table = self.table(&table_name)?;
        let stats = self
            .stats
            .get(&table_name.to_ascii_lowercase())
            .ok_or_else(|| Error::InvalidQuery(format!("no statistics for `{table_name}`")))?;
        let env = ExecEnv::with_memory_blocks(self.mem_blocks);
        let plan = optimize(&query, stats, self.scheme, &env)?;
        let report = execute_plan(&plan, table, &env)?;

        let order = query.order_by.clone().unwrap_or_else(SortSpec::empty);
        let mut out = report.table.clone();
        if !order.is_empty() {
            out = apply_final_order(out, &plan.final_props, &order, &env)?;
        }
        if let Some(projection) = &query.projection {
            out = project(out, projection)?;
        }
        Ok((out, plan, report))
    }

    /// The plan a query would run, without executing it (EXPLAIN).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let (table_name, query) = parse_window_query(sql, &self.catalog)?;
        let stats = self
            .stats
            .get(&table_name.to_ascii_lowercase())
            .ok_or_else(|| Error::InvalidQuery(format!("no statistics for `{table_name}`")))?;
        let env = ExecEnv::with_memory_blocks(self.mem_blocks);
        let plan = optimize(&query, stats, self.scheme, &env)?;
        Ok(format!(
            "{} [{}; est {:.1} ms]\n{}",
            plan.chain_string(),
            plan.scheme,
            plan.est_cost.ms(&env.weights()),
            plan.explain(self.schema(&table_name)?)
        ))
    }
}
