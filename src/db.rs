//! Legacy location of the embedded-database façade.
//!
//! The implementation moved to [`crate::session`]: [`Database`] is now a
//! `Clone + Send + Sync` handle opened from a
//! [`DatabaseConfig`](crate::session::DatabaseConfig), queries run through
//! [`Session`](crate::session::Session)s under admission control, and
//! `query_detailed` returns a named
//! [`QueryOutcome`](crate::session::QueryOutcome) instead of a 3-tuple.
//! This module re-exports the type so `wfopt::db::Database` and
//! `wfopt::Database` keep working; see the session module's docs for the
//! migration table.

pub use crate::session::Database;
