//! # wfopt — Optimization of Analytic Window Functions
//!
//! A from-scratch Rust reproduction of *"Optimization of Analytic Window
//! Functions"* (Cao, Chan, Li, Tan; VLDB 2012). The crate is a facade over
//! the workspace:
//!
//! * [`common`] — values, rows, schemas, attribute algebra,
//! * [`storage`] — block storage, simulated disk, cost tracking,
//! * [`exec`] — Full Sort / Hashed Sort / Segmented Sort and the window
//!   operator,
//! * [`core`] — segmented-relation properties, cover sets and the CSO /
//!   BFO / ORCL / PSQL planners,
//! * [`sql`] — a SQL front end for window queries,
//! * [`datagen`] — TPC-DS-shaped data generators used by the benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use wfopt::prelude::*;
//!
//! // emptab(empnum, dept, salary) — the paper's Example 1.
//! let schema = Schema::of(&[
//!     ("empnum", DataType::Int),
//!     ("dept", DataType::Int),
//!     ("salary", DataType::Int),
//! ]);
//! let mut table = Table::new(schema.clone());
//! for (e, d, s) in [(1, 0, 84000), (2, 0, 51000), (3, 1, 78000), (4, 1, 75000)] {
//!     table.push(Row::new(vec![e.into(), d.into(), s.into()]));
//! }
//!
//! let query = QueryBuilder::new(&schema)
//!     .window("rank_in_dept", WindowFunction::Rank, &["dept"], &[("salary", true)])
//!     .window("globalrank", WindowFunction::Rank, &[], &[("salary", true)])
//!     .build()
//!     .unwrap();
//!
//! let env = ExecEnv::with_memory_blocks(64);
//! let planned = optimize(&query, &TableStats::from_table(&table), Scheme::Cso, &env).unwrap();
//! let result = execute_plan(&planned, &table, &env).unwrap();
//! assert_eq!(result.table.row_count(), 4);
//! ```

pub mod db;
pub mod session;
pub use db::Database;
pub use session::{DatabaseConfig, PreparedQuery, QueryOutcome, Session};

pub use wf_common as common;
pub use wf_core as core;
pub use wf_datagen as datagen;
pub use wf_exec as exec;
pub use wf_sql as sql;
pub use wf_storage as storage;

/// One-stop imports for applications.
pub mod prelude {
    pub use wf_common::{
        AttrId, AttrSeq, AttrSet, DataType, Direction, Error, Field, NullOrder, OrdElem, Result,
        Row, RowComparator, Schema, SortSpec, Value,
    };
    pub use wf_core::cost::TableStats;
    pub use wf_core::plan::{Plan, PlanStep, ReorderOp};
    pub use wf_core::planner::{optimize, Scheme};
    pub use wf_core::query::{QueryBuilder, WindowQuery};
    pub use wf_core::runtime::{
        execute_plan, explain_analyze, ExecEnv, ExecMetrics, ExecReport, StepMetrics,
    };
    pub use wf_core::spec::{WindowFunction, WindowSpec};
    pub use wf_storage::table::Table;
    pub use wf_storage::{BackendStats, ObjectStoreConfig, SpillBackendKind, SpillConfig};

    pub use crate::session::{Database, DatabaseConfig, PreparedQuery, QueryOutcome, Session};
    pub use wf_core::admission::{AdmissionConfig, AdmissionStats, CancelToken, QueryGovernor};
}
