//! The served, concurrent front end: a shareable [`Database`] opened from a
//! [`DatabaseConfig`], handing out [`Session`]s whose
//! [`prepare`](Session::prepare) → [`execute`](PreparedQuery::execute) flow
//! returns everything about a run — rows, plan, [`ExecReport`], EXPLAIN
//! ANALYZE text, optional trace — in one [`QueryOutcome`].
//!
//! Concurrency model: the database owns one global
//! [`SegmentStore`] pool and a
//! [`QueryGovernor`]. Every executed query is first *admitted* (bounded
//! FIFO queue, optional timeout/cancel) and then runs inside a pooled
//! ledger sub-account budgeted with `per_query_blocks` of the shared pool,
//! so `max_concurrent × per_query_blocks ≤ memory_blocks` bounds global
//! residency while each query's spill decisions — and therefore its rows and
//! modeled counters — stay bit-identical to a solo run.
//!
//! # Migration from the pre-session `Database`
//!
//! | old                                  | new                                                        |
//! |--------------------------------------|------------------------------------------------------------|
//! | `Database::new()`                    | `DatabaseConfig::new().open()`                             |
//! | `.with_scheme(s)`                    | `DatabaseConfig::new().scheme(s).open()`                   |
//! | `.with_memory_blocks(m)`             | `DatabaseConfig::new().per_query_blocks(m).open()`         |
//! | `db.query_detailed(sql)` 3-tuple     | [`QueryOutcome`] named fields                              |
//! | `db.query(sql)`                      | unchanged (or `db.session().query(sql)`)                   |
//!
//! The deprecated builder methods still compile (they rebuild the database
//! with an equivalent config) but new code should open via the config.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};
use wf_common::{Error, Result, Schema, SortSpec, TraceSink};
use wf_core::admission::{AdmissionConfig, AdmissionStats, CancelToken, QueryGovernor};
use wf_core::cost::TableStats;
use wf_core::integrated::apply_final_order;
use wf_core::plan::Plan;
use wf_core::planner::{optimize, Scheme};
use wf_core::query::WindowQuery;
use wf_core::runtime::{explain_analyze, project, ExecEnv, ExecReport};
use wf_sql::{parse_window_query, Catalog};
use wf_storage::{BackendStats, SegmentStore, SpillBackendKind, SpillConfig, StoreSnapshot, Table};

/// Builder for a [`Database`]: planning scheme, the global memory pool, and
/// the admission-control knobs.
///
/// ```
/// use wfopt::prelude::*;
///
/// let db = DatabaseConfig::new()
///     .scheme(Scheme::Cso)
///     .memory_blocks(512)     // global pool
///     .max_concurrent(8)      // permits; per-query budget = 512/8 = 64
///     .open();
/// assert_eq!(db.config().resolved_per_query_blocks(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatabaseConfig {
    scheme: Scheme,
    memory_blocks: u64,
    max_concurrent: usize,
    per_query_blocks: Option<u64>,
    queue_depth: Option<usize>,
    worker_threads: Option<usize>,
    queue_timeout: Option<Duration>,
    spill_backend: Option<SpillBackendKind>,
    compress_spill: Option<bool>,
    prefetch_blocks: Option<usize>,
}

impl Default for DatabaseConfig {
    /// CSO planning, a 1024-block pool, 4 concurrent queries — so the
    /// default per-query budget matches the pre-session default of 256
    /// blocks of unit reorder memory.
    fn default() -> Self {
        DatabaseConfig {
            scheme: Scheme::Cso,
            memory_blocks: 1024,
            max_concurrent: 4,
            per_query_blocks: None,
            queue_depth: None,
            worker_threads: None,
            queue_timeout: None,
            spill_backend: None,
            compress_spill: None,
            prefetch_blocks: None,
        }
    }
}

impl DatabaseConfig {
    /// The default configuration (see [`DatabaseConfig::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Planning scheme for every query (default [`Scheme::Cso`]).
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Global memory pool in blocks (default 1024). Admitted queries share
    /// it; the shared ledger's high-water mark tracks their combined
    /// residency.
    pub fn memory_blocks(mut self, blocks: u64) -> Self {
        self.memory_blocks = blocks.max(1);
        self
    }

    /// Queries allowed to execute simultaneously (default 4); later
    /// arrivals queue FIFO up to [`DatabaseConfig::queue_depth`].
    pub fn max_concurrent(mut self, n: usize) -> Self {
        self.max_concurrent = n.max(1);
        self
    }

    /// Per-query ledger budget in blocks — the paper's `M` for each
    /// admitted query. Defaults to `memory_blocks / max_concurrent`, which
    /// guarantees the admitted set never outgrows the pool.
    pub fn per_query_blocks(mut self, blocks: u64) -> Self {
        self.per_query_blocks = Some(blocks.max(1));
        self
    }

    /// Arrivals allowed to wait when every permit is out (default
    /// `max_concurrent`); beyond that, queries are rejected immediately.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = Some(depth);
        self
    }

    /// Pin worker threads (plan shard count and OS threads) for every
    /// query. Unset, both default from the `WF_WORKERS` environment
    /// variable; pinning makes plans reproducible regardless of it.
    pub fn worker_threads(mut self, n: usize) -> Self {
        self.worker_threads = Some(n.max(1));
        self
    }

    /// Default queue-wait timeout for every session (default: wait
    /// indefinitely). Sessions can override per query.
    pub fn queue_timeout(mut self, timeout: Duration) -> Self {
        self.queue_timeout = Some(timeout);
        self
    }

    /// Spill backend for every query's spill traffic (sort runs, hash
    /// buckets, pool overflow). Unset, the backend comes from the
    /// `WF_SPILL_BACKEND` environment variable (in-memory by default).
    /// Rows and all counters are invariant under this knob.
    pub fn spill_backend(mut self, kind: SpillBackendKind) -> Self {
        self.spill_backend = Some(kind);
        self
    }

    /// Request block compression at rest for spill files (applied only on
    /// backends whose medium benefits — local files and the object store;
    /// the in-memory backend declines). Unset, follows `WF_SPILL_COMPRESS`.
    pub fn compress_spill(mut self, compress: bool) -> Self {
        self.compress_spill = Some(compress);
        self
    }

    /// Read-ahead depth in blocks for spill read-back (`0` = synchronous
    /// cold reads). Unset, follows `WF_PREFETCH_BLOCKS`.
    pub fn prefetch_blocks(mut self, blocks: usize) -> Self {
        self.prefetch_blocks = Some(blocks);
        self
    }

    /// The per-query budget this config resolves to.
    pub fn resolved_per_query_blocks(&self) -> u64 {
        self.per_query_blocks
            .unwrap_or_else(|| (self.memory_blocks / self.max_concurrent as u64).max(1))
    }

    /// The queue depth this config resolves to.
    pub fn resolved_queue_depth(&self) -> usize {
        self.queue_depth.unwrap_or(self.max_concurrent)
    }

    /// The live [`SpillConfig`] this config resolves to: environment
    /// defaults (`WF_SPILL_BACKEND` / `WF_SPILL_COMPRESS` /
    /// `WF_PREFETCH_BLOCKS`) with the explicit builder knobs layered on
    /// top. Each call builds a fresh backend (fresh traffic counters).
    pub fn resolved_spill_config(&self) -> SpillConfig {
        let env = SpillConfig::from_env();
        let mut cfg = match self.spill_backend {
            Some(kind) => SpillConfig::of_kind(kind)
                .with_compress(env.compress)
                .with_prefetch(env.prefetch_blocks),
            None => env,
        };
        if let Some(compress) = self.compress_spill {
            cfg = cfg.with_compress(compress);
        }
        if let Some(prefetch) = self.prefetch_blocks {
            cfg = cfg.with_prefetch(prefetch);
        }
        cfg
    }

    /// Open an (empty) database with this configuration.
    pub fn open(self) -> Database {
        let pool = SegmentStore::with_spill(Some(self.memory_blocks), self.resolved_spill_config());
        let governor = QueryGovernor::new(
            Arc::clone(&pool),
            AdmissionConfig {
                max_concurrent: self.max_concurrent,
                queue_depth: self.resolved_queue_depth(),
                per_query_blocks: self.resolved_per_query_blocks(),
            },
        );
        Database {
            inner: Arc::new(DbInner {
                catalog: RwLock::new(Catalog::new()),
                tables: RwLock::new(HashMap::new()),
                stats: RwLock::new(HashMap::new()),
                scheme: RwLock::new(self.scheme),
                governor,
                cfg: self,
            }),
        }
    }
}

struct DbInner {
    catalog: RwLock<Catalog>,
    tables: RwLock<HashMap<String, Table>>,
    stats: RwLock<HashMap<String, TableStats>>,
    scheme: RwLock<Scheme>,
    governor: Arc<QueryGovernor>,
    cfg: DatabaseConfig,
}

/// An in-memory database of named tables with a window-query SQL interface,
/// shared across threads: `Database` is `Clone + Send + Sync`, every clone
/// is a handle to the same catalog, tables and admission governor.
///
/// ```
/// use wfopt::prelude::*;
/// use wfopt::Database;
///
/// let db = DatabaseConfig::new().open();
/// let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
/// let mut t = Table::new(schema);
/// for (g, v) in [(1, 10), (1, 30), (2, 20)] {
///     t.push(Row::new(vec![g.into(), v.into()]));
/// }
/// db.register("t", t).unwrap();
///
/// let out = db
///     .session()
///     .query("SELECT *, rank() OVER (PARTITION BY g ORDER BY v DESC) AS r FROM t")
///     .unwrap();
/// assert_eq!(out.schema().len(), 3);
/// assert_eq!(out.row_count(), 3);
/// ```
#[derive(Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

impl Default for Database {
    fn default() -> Self {
        DatabaseConfig::default().open()
    }
}

impl Database {
    /// Database with the default configuration (see
    /// [`DatabaseConfig::default`]).
    pub fn new() -> Self {
        Database::default()
    }

    /// Change the optimization scheme.
    #[deprecated(since = "0.1.0", note = "use DatabaseConfig::new().scheme(..).open()")]
    pub fn with_scheme(self, scheme: Scheme) -> Self {
        *self.inner.scheme.write().expect("scheme lock") = scheme;
        self
    }

    /// Change the unit reorder memory (the paper's `M`, in blocks).
    ///
    /// The session equivalent is the **per-query** budget:
    /// `DatabaseConfig::new().per_query_blocks(blocks).open()`. This shim
    /// rebuilds the database (same tables) with that configuration.
    #[deprecated(
        since = "0.1.0",
        note = "use DatabaseConfig::new().per_query_blocks(..).open()"
    )]
    pub fn with_memory_blocks(self, blocks: u64) -> Self {
        let blocks = blocks.max(1);
        let cfg = DatabaseConfig {
            memory_blocks: blocks * self.inner.cfg.max_concurrent as u64,
            per_query_blocks: Some(blocks),
            scheme: *self.inner.scheme.read().expect("scheme lock"),
            ..self.inner.cfg.clone()
        };
        let db = cfg.open();
        {
            let mut tables = db.inner.tables.write().expect("tables lock");
            let mut stats = db.inner.stats.write().expect("stats lock");
            let mut catalog = db.inner.catalog.write().expect("catalog lock");
            for (name, table) in self.inner.tables.read().expect("tables lock").iter() {
                catalog.register(name, table.schema().clone());
                tables.insert(name.clone(), table.clone());
            }
            for (name, st) in self.inner.stats.read().expect("stats lock").iter() {
                stats.insert(name.clone(), st.clone());
            }
        }
        db
    }

    /// The configuration this database was opened with.
    pub fn config(&self) -> &DatabaseConfig {
        &self.inner.cfg
    }

    /// The admission governor (permit accounting, queue, shared pool).
    pub fn governor(&self) -> &Arc<QueryGovernor> {
        &self.inner.governor
    }

    /// Residency/spill snapshot of the shared pool across all queries.
    pub fn pool_snapshot(&self) -> StoreSnapshot {
        self.inner.governor.pool_snapshot()
    }

    /// Admission counters (admitted/queued/rejected, queue waits, …).
    pub fn admission_stats(&self) -> AdmissionStats {
        self.inner.governor.stats()
    }

    /// The live spill configuration (backend, compression, read-ahead)
    /// shared by every query of this database.
    pub fn spill_config(&self) -> &SpillConfig {
        self.inner.governor.pool().spill_config()
    }

    /// Spill-backend traffic across all queries: physical requests and
    /// bytes plus prefetch hit/miss counts. Informational — never part of
    /// modeled time or pool counters.
    pub fn spill_stats(&self) -> BackendStats {
        self.spill_config().stats()
    }

    /// Register (or replace) a table; statistics are computed eagerly.
    /// Names are canonicalized exactly like the SQL catalog's
    /// ([`Catalog::canonical`]), so `WS` and `ws` are the same table.
    pub fn register(&self, name: &str, table: Table) -> Result<()> {
        let key = Catalog::canonical(name);
        self.inner
            .catalog
            .write()
            .expect("catalog lock")
            .register(name, table.schema().clone());
        self.inner
            .stats
            .write()
            .expect("stats lock")
            .insert(key.clone(), TableStats::from_table(&table));
        self.inner
            .tables
            .write()
            .expect("tables lock")
            .insert(key, table);
        Ok(())
    }

    /// Look up a registered table (a cheap handle: rows are `Arc`-shared).
    pub fn table(&self, name: &str) -> Result<Table> {
        self.inner
            .tables
            .read()
            .expect("tables lock")
            .get(&Catalog::canonical(name))
            .cloned()
            .ok_or_else(|| Error::InvalidQuery(format!("unknown table `{name}`")))
    }

    /// Table schema by name.
    pub fn schema(&self, name: &str) -> Result<Schema> {
        self.table(name).map(|t| t.schema().clone())
    }

    /// Names of every registered table, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .tables
            .read()
            .expect("tables lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Open a session — a lightweight, cloneable handle for running
    /// queries; per-session timeout/cancel/trace settings ride on it.
    pub fn session(&self) -> Session {
        Session {
            db: self.clone(),
            timeout: self.inner.cfg.queue_timeout,
            cancel: None,
            trace: false,
        }
    }

    /// Run a window query end to end; returns the result table.
    pub fn query(&self, sql: &str) -> Result<Table> {
        self.session().query(sql)
    }

    /// Run a window query, returning the full [`QueryOutcome`] (result
    /// table, plan, execution report, EXPLAIN ANALYZE text, timings).
    pub fn query_detailed(&self, sql: &str) -> Result<QueryOutcome> {
        self.session().execute(sql)
    }

    /// The plan a query would run, without executing it (EXPLAIN).
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.session().explain(sql)
    }

    fn stats_for(&self, canonical: &str) -> Result<TableStats> {
        self.inner
            .stats
            .read()
            .expect("stats lock")
            .get(canonical)
            .cloned()
            .ok_or_else(|| Error::InvalidQuery(format!("no statistics for `{canonical}`")))
    }

    /// Planning environment: per-query budget, pinned workers if configured.
    fn plan_env(&self) -> ExecEnv {
        let env = ExecEnv::with_memory_blocks(self.inner.cfg.resolved_per_query_blocks());
        match self.inner.cfg.worker_threads {
            Some(n) => env.with_par_workers(n).with_worker_threads(n),
            None => env,
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.table_names())
            .field("config", &self.inner.cfg)
            .finish()
    }
}

/// A handle for running queries against a shared [`Database`].
///
/// Sessions are cheap to clone and hold no server-side state beyond their
/// settings: timeout ([`Session::with_timeout`]), cooperative cancellation
/// ([`Session::with_cancel`]) and tracing ([`Session::with_trace`]). The
/// flow is [`prepare`](Session::prepare) (parse → bind → optimize) followed
/// by [`PreparedQuery::execute`] (admission → run → finalize), or the
/// [`execute`](Session::execute)/[`query`](Session::query) shortcuts.
#[derive(Clone)]
pub struct Session {
    db: Database,
    timeout: Option<Duration>,
    cancel: Option<CancelToken>,
    trace: bool,
}

impl Session {
    /// The database this session runs against.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Bound the admission queue wait for queries from this session.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Attach a cancellation token; firing it aborts queued or not-yet-run
    /// queries from this session with [`Error::Canceled`].
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Record an execution timeline; [`QueryOutcome::trace`] carries it as
    /// Chrome trace-event JSON. Tracing never changes rows or counters.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Parse, bind and optimize a SQL window query against the catalog.
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery> {
        let catalog = self.db.inner.catalog.read().expect("catalog lock").clone();
        let (table_name, query) = parse_window_query(sql, &catalog)?;
        self.prepare_query(&table_name, query)
    }

    /// Plan an already-bound [`WindowQuery`] (the [`QueryBuilder`] path)
    /// against a registered table.
    ///
    /// [`QueryBuilder`]: wf_core::query::QueryBuilder
    pub fn prepare_query(&self, table: &str, query: WindowQuery) -> Result<PreparedQuery> {
        let canonical = Catalog::canonical(table);
        // Resolve the table now so errors surface at prepare time.
        self.db.table(&canonical)?;
        let stats = self.db.stats_for(&canonical)?;
        let scheme = *self.db.inner.scheme.read().expect("scheme lock");
        let env = self.db.plan_env();
        let plan = optimize(&query, &stats, scheme, &env)?;
        Ok(PreparedQuery {
            session: self.clone(),
            table_name: canonical,
            query,
            plan,
        })
    }

    /// [`prepare`](Session::prepare) + [`execute`](PreparedQuery::execute).
    pub fn execute(&self, sql: &str) -> Result<QueryOutcome> {
        self.prepare(sql)?.execute()
    }

    /// Run a query and return only the result table.
    pub fn query(&self, sql: &str) -> Result<Table> {
        self.execute(sql).map(|o| o.table)
    }

    /// The plan a query would run, without executing it (EXPLAIN).
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.prepare(sql)?.explain()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("timeout", &self.timeout)
            .field(
                "canceled",
                &self.cancel.as_ref().map(CancelToken::is_canceled),
            )
            .field("trace", &self.trace)
            .finish()
    }
}

/// A planned query, ready to execute (repeatedly, if desired).
///
/// Produced by [`Session::prepare`]/[`Session::prepare_query`]; the plan is
/// fixed at prepare time, while each [`execute`](PreparedQuery::execute)
/// goes through admission and runs in a fresh pooled sub-account.
pub struct PreparedQuery {
    session: Session,
    table_name: String,
    query: WindowQuery,
    plan: Plan,
}

impl PreparedQuery {
    /// The optimized plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Canonical name of the source table.
    pub fn table_name(&self) -> &str {
        &self.table_name
    }

    /// The bound window query this plan was optimized for.
    pub fn window_query(&self) -> &WindowQuery {
        &self.query
    }

    /// EXPLAIN text for the plan (chain, scheme, estimated cost, steps).
    pub fn explain(&self) -> Result<String> {
        let db = &self.session.db;
        let env = db.plan_env();
        Ok(format!(
            "{} [{}; est {:.1} ms]\n{}",
            self.plan.chain_string(),
            self.plan.scheme,
            self.plan.est_cost.ms(&env.weights()),
            self.plan.explain(&db.schema(&self.table_name)?)
        ))
    }

    /// Admit the query into the shared pool (waiting in the FIFO queue if
    /// every permit is out), execute the plan inside the admitted ledger
    /// sub-account, apply the final ORDER BY and projection, and return the
    /// full [`QueryOutcome`].
    pub fn execute(&self) -> Result<QueryOutcome> {
        let start = Instant::now();
        let db = &self.session.db;
        let governor = &db.inner.governor;
        let permit = governor.admit(self.session.timeout, self.session.cancel.as_ref())?;
        if let Some(tok) = &self.session.cancel {
            if tok.is_canceled() {
                return Err(Error::Canceled("before execution".into()));
            }
        }
        let table = db.table(&self.table_name)?;
        let mut env = ExecEnv::with_store(Arc::clone(permit.store()));
        if let Some(n) = db.inner.cfg.worker_threads {
            env = env.with_par_workers(n).with_worker_threads(n);
        }
        let sink = self.session.trace.then(TraceSink::enabled);
        if let Some(s) = &sink {
            env = env.with_trace(Arc::clone(s));
        }
        let (report, analyze) = explain_analyze(&self.plan, &table, &env)?;

        let order = self.query.order_by.clone().unwrap_or_else(SortSpec::empty);
        let mut out = report.table.clone();
        if !order.is_empty() {
            out = apply_final_order(out, &self.plan.final_props, &order, &env)?;
        }
        if let Some(projection) = &self.query.projection {
            out = project(out, projection)?;
        }
        let queue_wait = permit.queue_wait();
        drop(permit);
        Ok(QueryOutcome {
            table: out,
            plan: self.plan.clone(),
            report,
            explain: analyze,
            wall: start.elapsed(),
            queue_wait,
            admission: governor.stats(),
            trace: sink.map(|s| s.to_chrome_json()),
        })
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PreparedQuery<{} over `{}`>",
            self.plan.chain_string(),
            self.table_name
        )
    }
}

/// Everything one query execution produced, in named fields (the session
/// API's replacement for the old `(Table, Plan, ExecReport)` tuple).
#[derive(Debug)]
pub struct QueryOutcome {
    /// The result rows (final ORDER BY and projection applied).
    pub table: Table,
    /// The executed plan.
    pub plan: Plan,
    /// Execution report: modeled counters, per-step metrics, store snapshot.
    pub report: ExecReport,
    /// Rendered EXPLAIN ANALYZE text for the run.
    pub explain: String,
    /// End-to-end wall time, admission wait included.
    pub wall: Duration,
    /// Time spent waiting in the admission queue.
    pub queue_wait: Duration,
    /// Governor counters snapshotted at completion.
    pub admission: AdmissionStats,
    /// Execution timeline as Chrome trace-event JSON, when the session had
    /// tracing enabled ([`Session::with_trace`]).
    pub trace: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wf_common::{DataType, Row};

    fn demo_db() -> Database {
        let db = DatabaseConfig::new()
            .memory_blocks(256)
            .max_concurrent(2)
            .open();
        let schema = Schema::of(&[("g", DataType::Int), ("v", DataType::Int)]);
        let mut t = Table::new(schema);
        for (g, v) in [(1, 10), (1, 30), (2, 20), (2, 40)] {
            t.push(Row::new(vec![g.into(), v.into()]));
        }
        db.register("T", t).unwrap();
        db
    }

    #[test]
    fn session_flow_returns_a_full_outcome() {
        let db = demo_db();
        let out = db
            .session()
            .execute("SELECT *, rank() OVER (PARTITION BY g ORDER BY v DESC) AS r FROM t")
            .unwrap();
        assert_eq!(out.table.row_count(), 4);
        assert_eq!(out.table.schema().len(), 3);
        assert!(out.explain.contains("model ms"), "analyze table rendered");
        assert_eq!(out.queue_wait, Duration::ZERO);
        assert_eq!(out.admission.admitted, 1);
        assert!(out.trace.is_none());
        assert!(!out.plan.steps.is_empty());
    }

    #[test]
    fn table_names_are_canonicalized_across_register_and_query() {
        let db = demo_db();
        // Registered as `T`; query as `t`, look up as `T` or `t`.
        assert!(db.table("T").is_ok());
        assert!(db.table("t").is_ok());
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        let out = db
            .query("SELECT *, rank() OVER (ORDER BY v) AS r FROM T")
            .unwrap();
        assert_eq!(out.row_count(), 4);
    }

    #[test]
    fn database_handles_share_state() {
        let db = demo_db();
        let other = db.clone();
        let schema = Schema::of(&[("x", DataType::Int)]);
        other.register("late", Table::new(schema)).unwrap();
        assert!(db.table("late").is_ok(), "clone registered into shared map");
        db.query("SELECT *, rank() OVER (ORDER BY v) AS r FROM t")
            .unwrap();
        assert_eq!(other.admission_stats().admitted, 1, "shared governor");
    }

    #[test]
    fn traced_session_carries_a_timeline() {
        let db = demo_db();
        let out = db
            .session()
            .with_trace(true)
            .execute("SELECT *, rank() OVER (ORDER BY v) AS r FROM t")
            .unwrap();
        let trace = out.trace.expect("trace requested");
        assert!(trace.contains("traceEvents"));
    }

    #[test]
    fn canceled_session_fails_cleanly_and_store_survives() {
        let db = demo_db();
        let token = CancelToken::new();
        token.cancel();
        let err = db
            .session()
            .with_cancel(token)
            .execute("SELECT *, rank() OVER (ORDER BY v) AS r FROM t")
            .unwrap_err();
        assert!(matches!(err, Error::Canceled(_)), "{err}");
        // The shared store is untouched and the database still works.
        assert_eq!(db.pool_snapshot().resident_bytes, 0);
        let again = db
            .query("SELECT *, rank() OVER (ORDER BY v) AS r FROM t")
            .unwrap();
        assert_eq!(again.row_count(), 4);
    }

    #[test]
    fn deprecated_shims_still_work() {
        #![allow(deprecated)]
        let db = Database::new()
            .with_scheme(Scheme::Psql)
            .with_memory_blocks(64);
        assert_eq!(db.config().resolved_per_query_blocks(), 64);
        let schema = Schema::of(&[("v", DataType::Int)]);
        let mut t = Table::new(schema);
        t.push(Row::new(vec![1.into()]));
        db.register("t", t).unwrap();
        let out = db.query_detailed("SELECT *, rank() OVER (ORDER BY v) AS r FROM t");
        assert_eq!(out.unwrap().table.row_count(), 1);
    }
}
